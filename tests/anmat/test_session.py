"""Tests for the AnmatSession workflow (upload → profile → discover →
confirm → detect)."""

import pytest

from repro.anmat.project import ProjectStore
from repro.anmat.session import AnmatSession, SessionState
from repro.discovery.config import DiscoveryConfig
from repro.errors import ProjectError
from repro.metrics.evaluation import evaluate_report


class TestWorkflowOrder:
    def test_initial_state(self):
        session = AnmatSession(dataset_name="demo")
        assert session.state is SessionState.CREATED
        with pytest.raises(ProjectError):
            session.run_profiling()
        with pytest.raises(ProjectError):
            session.run_discovery()

    def test_detection_requires_confirmed_pfds(self, small_zip_city_state):
        session = AnmatSession(dataset_name="demo")
        session.load_table(small_zip_city_state.table)
        session.run_discovery()
        with pytest.raises(ProjectError):
            session.run_detection()

    def test_confirm_unknown_name(self, small_zip_city_state):
        session = AnmatSession(dataset_name="demo")
        session.load_table(small_zip_city_state.table)
        session.run_discovery()
        with pytest.raises(ProjectError):
            session.confirm(["not-a-pfd"])


class TestFullWorkflow:
    @pytest.fixture
    def session(self, small_zip_city_state):
        session = AnmatSession(dataset_name="zips")
        session.load_table(small_zip_city_state.table)
        session.set_parameters(min_coverage=0.6, allowed_violation_ratio=0.05)
        return session

    def test_states_advance(self, session):
        assert session.state is SessionState.LOADED
        session.run_profiling()
        assert session.state is SessionState.PROFILED
        session.run_discovery()
        assert session.state is SessionState.DISCOVERED
        session.confirm_all()
        session.run_detection()
        assert session.state is SessionState.DETECTED

    def test_parameters_are_applied(self, session):
        assert session.config.min_coverage == 0.6
        session.set_parameters(min_coverage=0.9)
        assert session.config.min_coverage == 0.9

    def test_discovery_profiles_implicitly(self, session):
        session.run_discovery()
        assert session.profile is not None

    def test_confirm_subset(self, session):
        session.run_discovery()
        names = [pfd.name for pfd in session.discovered_pfds()]
        session.confirm(names[:1])
        assert len(session.confirmed_pfds()) == 1
        report = session.run_detection()
        assert report is session.violations

    def test_detection_finds_injected_errors(self, session, small_zip_city_state):
        session.run_discovery()
        session.confirm_all()
        report = session.run_detection()
        evaluation = evaluate_report(report, small_zip_city_state.error_cells)
        assert evaluation.recall >= 0.8

    def test_repair_suggestions_follow_detection(self, session):
        assert session.repair_suggestions() == []
        session.run_discovery()
        session.confirm_all()
        session.run_detection()
        suggestions = session.repair_suggestions()
        assert suggestions
        assert all(s.suggested_value != s.current_value for s in suggestions)

    def test_summary_contents(self, session):
        session.run_discovery()
        session.confirm_all()
        session.run_detection()
        summary = session.summary()
        assert summary["dataset"] == "zips"
        assert summary["n_pfds"] >= summary["n_confirmed"] > 0
        assert summary["n_violations"] == len(session.violations)


class TestProjectIntegration:
    def test_session_persists_into_project(self, tmp_path, small_phone_state):
        project = ProjectStore(tmp_path).create_project("phones")
        session = AnmatSession(
            dataset_name="d1", project=project, config=DiscoveryConfig(min_coverage=0.5)
        )
        session.load_table(small_phone_state.table)
        session.run_discovery()
        session.confirm_all()
        session.run_detection()
        # the dataset, the PFDs and the detection summary are all on disk
        assert project.load_dataset("d1").n_rows == small_phone_state.table.n_rows
        assert project.load_pfds("d1")
        assert project.load_results("d1")["n_violations"] == len(session.violations)
