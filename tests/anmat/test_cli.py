"""Tests for the ``anmat`` command-line interface."""

import pytest

from repro.anmat.cli import build_parser, main
from repro.dataset.csvio import write_csv
from repro.datagen import build_dataset


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_choices(self):
        args = build_parser().parse_args(["discover", "--dataset", "phone_state"])
        assert args.dataset == "phone_state"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["discover", "--dataset", "nope"])


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "phone_state" in out
        assert "zip_city_state" in out

    def test_profile_command(self, capsys):
        assert main(["profile", "--dataset", "paper_d2_zip"]) == 0
        out = capsys.readouterr().out
        assert "pattern::position, frequency" in out

    def test_discover_command(self, capsys):
        code = main(
            [
                "discover",
                "--dataset", "paper_d2_zip",
                "--min-coverage", "0.5",
                "--allowed-violations", "0.3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Discovered" in out

    def test_detect_command_with_score(self, capsys):
        code = main(
            [
                "detect",
                "--dataset", "phone_state",
                "--min-coverage", "0.5",
                "--score",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "violations over" in out
        assert "precision=" in out

    def test_detect_with_strategy(self, capsys):
        code = main(["detect", "--dataset", "paper_d2_zip", "--min-coverage", "0.4",
                     "--allowed-violations", "0.3", "--strategy", "scan"])
        assert code == 0

    def test_csv_input(self, tmp_path, capsys):
        dataset = build_dataset("zip_city_state", n_rows=200)
        path = tmp_path / "zips.csv"
        write_csv(dataset.table, path)
        assert main(["discover", "--csv", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Discovered" in out
