"""Tests for the ``anmat`` command-line interface."""

import pytest

from repro.anmat.cli import EXIT_CLEAN, EXIT_VIOLATIONS_FOUND, build_parser, main
from repro.errors import CsvFormatError
from repro.dataset.csvio import write_csv
from repro.datagen import build_dataset


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_choices(self):
        args = build_parser().parse_args(["discover", "--dataset", "phone_state"])
        assert args.dataset == "phone_state"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["discover", "--dataset", "nope"])


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "phone_state" in out
        assert "zip_city_state" in out

    def test_profile_command(self, capsys):
        assert main(["profile", "--dataset", "paper_d2_zip"]) == 0
        out = capsys.readouterr().out
        assert "pattern::position, frequency" in out

    def test_discover_command(self, capsys):
        code = main(
            [
                "discover",
                "--dataset", "paper_d2_zip",
                "--min-coverage", "0.5",
                "--allowed-violations", "0.3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Discovered" in out

    def test_detect_command_with_score(self, capsys):
        # the dataset has injected errors, so detect signals them via the
        # documented non-zero exit code
        code = main(
            [
                "detect",
                "--dataset", "phone_state",
                "--min-coverage", "0.5",
                "--score",
            ]
        )
        assert code == EXIT_VIOLATIONS_FOUND
        out = capsys.readouterr().out
        assert "violations over" in out
        assert "precision=" in out

    def test_detect_with_strategy(self, capsys):
        code = main(["detect", "--dataset", "paper_d2_zip", "--min-coverage", "0.4",
                     "--allowed-violations", "0.3", "--strategy", "scan"])
        assert code in (EXIT_CLEAN, EXIT_VIOLATIONS_FOUND)

    def test_detect_exit_code_distinguishes_clean_data(self, tmp_path, capsys):
        dataset = build_dataset("zip_city_state", n_rows=200)
        clean_path = tmp_path / "clean.csv"
        write_csv(dataset.clean_table, clean_path)
        assert main(["detect", "--csv", str(clean_path)]) == EXIT_CLEAN
        dirty_path = tmp_path / "dirty.csv"
        write_csv(dataset.table, dirty_path)
        assert main(["detect", "--csv", str(dirty_path)]) == EXIT_VIOLATIONS_FOUND
        capsys.readouterr()

    def test_detect_help_mentions_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            main(["detect", "--help"])
        out = capsys.readouterr().out
        assert "exit codes" in out
        assert str(EXIT_VIOLATIONS_FOUND) in out

    def test_score_without_ground_truth_warns_on_stderr(self, tmp_path, capsys):
        # a CSV upload has no injected ground truth: --score must say so
        # instead of silently skipping the evaluation block
        dataset = build_dataset("zip_city_state", n_rows=200)
        path = tmp_path / "zips.csv"
        write_csv(dataset.table, path)
        code = main(["detect", "--csv", str(path), "--score"])
        assert code == EXIT_VIOLATIONS_FOUND
        captured = capsys.readouterr()
        assert "--score ignored" in captured.err
        assert "precision=" not in captured.out

    def test_csv_input(self, tmp_path, capsys):
        dataset = build_dataset("zip_city_state", n_rows=200)
        path = tmp_path / "zips.csv"
        write_csv(dataset.table, path)
        assert main(["discover", "--csv", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Discovered" in out


class TestShardRows:
    """The --shard-rows flag: sharded runs keep the documented exit-code
    and stderr contracts and report the same violations."""

    def test_flag_parses_and_rejects_negative(self):
        args = build_parser().parse_args(["detect", "--shard-rows", "500"])
        assert args.shard_rows == 500
        with pytest.raises(SystemExit):  # argparse usage error, exit 2
            build_parser().parse_args(["detect", "--shard-rows", "-1"])

    def test_shard_size_one_smoke_run(self, capsys):
        # the degenerate one-row-per-shard partition must still work
        code = main(
            [
                "detect",
                "--dataset", "paper_d2_zip",
                "--min-coverage", "0.4",
                "--allowed-violations", "0.3",
                "--shard-rows", "1",
            ]
        )
        assert code == EXIT_VIOLATIONS_FOUND
        out = capsys.readouterr().out
        assert "strategy=sharded" in out

    def test_sharded_detect_reports_same_violations_as_monolithic(
        self, tmp_path, capsys
    ):
        dataset = build_dataset("zip_city_state", n_rows=200)
        path = tmp_path / "zips.csv"
        write_csv(dataset.table, path)
        assert main(["detect", "--csv", str(path)]) == EXIT_VIOLATIONS_FOUND
        monolithic = capsys.readouterr().out
        code = main(["detect", "--csv", str(path), "--shard-rows", "32"])
        assert code == EXIT_VIOLATIONS_FOUND
        sharded = capsys.readouterr().out
        # same violation count and suspects, different strategy label
        assert monolithic.splitlines()[0].replace("auto", "sharded") == (
            sharded.splitlines()[0]
        )

    def test_sharded_detect_exit_zero_on_clean_data(self, tmp_path, capsys):
        dataset = build_dataset("zip_city_state", n_rows=200)
        path = tmp_path / "clean.csv"
        write_csv(dataset.clean_table, path)
        assert main(["detect", "--csv", str(path), "--shard-rows", "64"]) == EXIT_CLEAN
        capsys.readouterr()

    def test_sharded_score_without_ground_truth_still_warns(self, tmp_path, capsys):
        dataset = build_dataset("zip_city_state", n_rows=200)
        path = tmp_path / "zips.csv"
        write_csv(dataset.table, path)
        code = main(["detect", "--csv", str(path), "--shard-rows", "32", "--score"])
        assert code == EXIT_VIOLATIONS_FOUND
        captured = capsys.readouterr()
        assert "--score ignored" in captured.err

    def test_sharded_csv_rejects_ragged_rows_with_line_number(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("zip,city\n90001,Los Angeles\n90002\n")
        with pytest.raises(CsvFormatError, match="line 3"):
            main(["detect", "--csv", str(path), "--shard-rows", "1"])

    def test_sharded_discover_matches_monolithic_rules(self, tmp_path, capsys):
        import re

        def strip_timing(text):
            # the header embeds wall-clock ("... in 0.02s") — not part of
            # the rule-set contract under comparison
            return re.sub(r"in \d+\.\d+s", "in Xs", text)

        dataset = build_dataset("zip_city_state", n_rows=200)
        path = tmp_path / "zips.csv"
        write_csv(dataset.table, path)
        assert main(["discover", "--csv", str(path)]) == 0
        monolithic = capsys.readouterr().out
        assert main(["discover", "--csv", str(path), "--shard-rows", "32"]) == 0
        assert strip_timing(capsys.readouterr().out) == strip_timing(monolithic)


class TestRuleMaintenanceFlag:
    """--rule-maintenance: how a re-check refreshes the rule set."""

    def test_flag_parses_and_defaults_to_auto(self):
        for command in ("profile", "discover", "detect"):
            args = build_parser().parse_args([command])
            assert args.rule_maintenance == "auto"
            for choice in ("auto", "incremental", "full"):
                args = build_parser().parse_args(
                    [command, "--rule-maintenance", choice]
                )
                assert args.rule_maintenance == choice
        with pytest.raises(SystemExit):  # argparse usage error, exit 2
            build_parser().parse_args(["detect", "--rule-maintenance", "eager"])


class TestStoreFlags:
    """--store / --spill-dir: out-of-core uploads from the CLI."""

    def test_flag_parses_on_all_upload_commands(self):
        for command in ("profile", "discover", "detect"):
            args = build_parser().parse_args([command, "--store", "spill"])
            assert args.store == "spill"
            args = build_parser().parse_args(
                [command, "--store", "object", "--spill-dir", "/tmp/x"]
            )
            assert args.spill_dir == "/tmp/x"
        with pytest.raises(SystemExit):  # argparse usage error, exit 2
            build_parser().parse_args(["detect", "--store", "cloud"])

    def test_store_defaults_to_memory(self):
        args = build_parser().parse_args(["detect"])
        assert args.store == "memory"
        assert args.spill_dir is None

    def test_spill_store_reports_same_violations_as_memory(self, tmp_path, capsys):
        dataset = build_dataset("zip_city_state", n_rows=200)
        path = tmp_path / "zips.csv"
        write_csv(dataset.table, path)
        code = main(["detect", "--csv", str(path), "--shard-rows", "32"])
        assert code == EXIT_VIOLATIONS_FOUND
        memory = capsys.readouterr().out
        for store in ("spill", "object"):
            code = main(
                [
                    "detect",
                    "--csv", str(path),
                    "--shard-rows", "32",
                    "--store", store,
                    "--spill-dir", str(tmp_path / store),
                ]
            )
            assert code == EXIT_VIOLATIONS_FOUND
            assert capsys.readouterr().out == memory

    def test_non_memory_store_implies_sharding(self, capsys):
        # without --shard-rows, --store spill still runs sharded (an
        # out-of-core store under a monolithic run would be pointless)
        code = main(
            [
                "detect",
                "--dataset", "paper_d2_zip",
                "--min-coverage", "0.4",
                "--allowed-violations", "0.3",
                "--store", "spill",
                "--explain-plan",
            ]
        )
        assert code == EXIT_VIOLATIONS_FOUND
        out = capsys.readouterr().out
        assert "backend=sharded" in out
        assert "store=spill" in out
        assert "materialization=never" in out

    def test_builtin_dataset_reshards_into_the_store(self, tmp_path, capsys):
        spill_dir = tmp_path / "spill"
        code = main(
            [
                "discover",
                "--dataset", "paper_d2_zip",
                "--min-coverage", "0.4",
                "--allowed-violations", "0.3",
                "--store", "spill",
                "--shard-rows", "4",
                "--spill-dir", str(spill_dir),
            ]
        )
        assert code == 0
        capsys.readouterr()
        # the run streamed through real spill files in the named dir
        assert sorted(spill_dir.glob("shard_*.csv"))

    def test_spill_store_profile_command(self, capsys):
        assert main(["profile", "--dataset", "paper_d2_zip", "--store", "spill"]) == 0
        out = capsys.readouterr().out
        assert "pattern::position, frequency" in out


class TestObjectUrlFlag:
    """--object-url: shard objects served by a remote HTTP store."""

    @pytest.fixture(scope="class")
    def server(self):
        from repro.sharding.devserver import ObjectHTTPServer

        with ObjectHTTPServer() as running:
            yield running

    def test_flag_parses_and_defaults_to_none(self):
        args = build_parser().parse_args(["detect"])
        assert args.object_url is None
        args = build_parser().parse_args(
            ["detect", "--store", "object", "--object-url", "http://127.0.0.1:80"]
        )
        assert args.object_url == "http://127.0.0.1:80"

    def test_non_http_url_rejected(self):
        from repro.sharding import ObjectStoreError

        with pytest.raises(ObjectStoreError, match="http"):
            main(
                [
                    "detect",
                    "--store", "object",
                    "--object-url", "s3://bucket/prefix",
                ]
            )

    def test_non_http_url_rejected_by_the_config_too(self):
        # the session API path validates before any client is built
        from repro.discovery import DiscoveryConfig
        from repro.errors import DiscoveryError

        with pytest.raises(DiscoveryError, match="object_url"):
            DiscoveryConfig(store="object", object_url="s3://bucket/prefix")

    def test_remote_detect_matches_memory_and_leaks_nothing(
        self, server, tmp_path, capsys
    ):
        dataset = build_dataset("zip_city_state", n_rows=200)
        path = tmp_path / "zips.csv"
        write_csv(dataset.table, path)
        code = main(["detect", "--csv", str(path), "--shard-rows", "32"])
        assert code == EXIT_VIOLATIONS_FOUND
        memory = capsys.readouterr().out
        code = main(
            [
                "detect",
                "--csv", str(path),
                "--shard-rows", "32",
                "--store", "object",
                "--object-url", server.url,
            ]
        )
        assert code == EXIT_VIOLATIONS_FOUND
        assert capsys.readouterr().out == memory
        # the run owned its remote namespace: nothing left on the server
        assert server.object_count() == 0

    def test_plan_records_the_http_client(self, server, capsys):
        code = main(
            [
                "detect",
                "--dataset", "paper_d2_zip",
                "--min-coverage", "0.4",
                "--allowed-violations", "0.3",
                "--store", "object",
                "--object-url", server.url,
                "--explain-plan",
            ]
        )
        assert code == EXIT_VIOLATIONS_FOUND
        out = capsys.readouterr().out
        assert "store=object[http]" in out
        assert server.object_count() == 0

    def test_plan_records_the_local_client_without_a_url(self, capsys):
        code = main(
            [
                "detect",
                "--dataset", "paper_d2_zip",
                "--min-coverage", "0.4",
                "--allowed-violations", "0.3",
                "--store", "object",
                "--explain-plan",
            ]
        )
        assert code == EXIT_VIOLATIONS_FOUND
        assert "store=object[local]" in capsys.readouterr().out


class TestExecutorFlags:
    """--executor / --n-workers / --explain-plan on discover and detect."""

    def test_executor_flag_parses_on_both_subcommands(self):
        for command in ("discover", "detect"):
            args = build_parser().parse_args([command, "--executor", "sharded"])
            assert args.executor == "sharded"
            args = build_parser().parse_args([command, "--n-workers", "2"])
            assert args.n_workers == 2
        with pytest.raises(SystemExit):  # argparse usage error, exit 2
            build_parser().parse_args(["detect", "--executor", "remote"])

    def test_forced_executors_report_identically(self, capsys):
        outputs = {}
        for executor in ("serial", "parallel", "sharded"):
            code = main(
                [
                    "detect",
                    "--dataset", "paper_d2_zip",
                    "--min-coverage", "0.4",
                    "--allowed-violations", "0.3",
                    "--executor", executor,
                ]
            )
            assert code == EXIT_VIOLATIONS_FOUND
            outputs[executor] = capsys.readouterr().out
        # same violations; only the strategy label differs on sharded
        assert outputs["parallel"] == outputs["serial"]
        assert outputs["sharded"].splitlines()[0] == (
            outputs["serial"].splitlines()[0].replace("auto", "sharded")
        )

    def test_explain_plan_prints_before_running(self, capsys):
        code = main(
            [
                "detect",
                "--dataset", "paper_d2_zip",
                "--min-coverage", "0.4",
                "--allowed-violations", "0.3",
                "--shard-rows", "8",
                "--explain-plan",
            ]
        )
        assert code == EXIT_VIOLATIONS_FOUND
        out = capsys.readouterr().out
        assert "execution plan (discovery): backend=sharded" in out
        assert "execution plan (detection): backend=sharded" in out
        # the plans print before any report output
        assert out.index("execution plan") < out.index("violations over")

    def test_explain_plan_on_discover(self, capsys):
        code = main(
            [
                "discover",
                "--dataset", "paper_d2_zip",
                "--min-coverage", "0.4",
                "--allowed-violations", "0.3",
                "--explain-plan",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "execution plan (discovery): backend=serial" in out

    def test_n_workers_detect_matches_serial(self, capsys):
        baseline = main(
            ["detect", "--dataset", "phone_state", "--min-coverage", "0.5"]
        )
        serial_out = capsys.readouterr().out
        code = main(
            [
                "detect",
                "--dataset", "phone_state",
                "--min-coverage", "0.5",
                "--n-workers", "2",
            ]
        )
        assert code == baseline == EXIT_VIOLATIONS_FOUND
        assert capsys.readouterr().out == serial_out
