"""Equivalence: cached, memoized, and parallel paths == uncached serial.

The perf subsystem is pure acceleration — these tests prove that the
shared compiled-pattern caches, the MatchMemo, the per-table artifact
cache, the single-pass columnar inverted-index build, and the
``n_workers > 1`` fan-out all produce results identical to the uncached
serial implementation, on the zip → city/state and employee datasets.
"""

from __future__ import annotations

import pytest

from repro import perf
from repro.datagen import generate_employee_ids, generate_zip_city_state
from repro.detection import DetectionStrategy, ErrorDetector
from repro.discovery import DiscoveryConfig, PfdDiscoverer


@pytest.fixture(scope="module")
def zip_table():
    return generate_zip_city_state(n_rows=400, seed=23).table


@pytest.fixture(scope="module")
def employee_table():
    return generate_employee_ids(n_rows=400, seed=31).table


def canonical_discovery(result) -> dict:
    """Everything meaningful in a DiscoveryResult, minus wall-clock noise."""
    return {
        "pfds": [pfd.to_dict() for pfd in result.pfds],
        "reports": [
            {
                "lhs": report.lhs,
                "rhs": report.rhs,
                "accepted": report.accepted,
                "coverage": report.coverage,
                "constant": [
                    (
                        candidate.pattern_text,
                        candidate.rhs_constant,
                        candidate.support,
                        candidate.agreement,
                        tuple(candidate.covered_tuple_ids),
                        tuple(candidate.violating_tuple_ids),
                        candidate.source_token,
                        candidate.source_position,
                    )
                    for candidate in report.constant_candidates
                ],
                "variable": [
                    (
                        candidate.pattern_text,
                        candidate.coverage,
                        candidate.agreement,
                        candidate.n_blocks,
                        candidate.n_multi_blocks,
                        candidate.description,
                    )
                    for candidate in report.variable_candidates
                ],
            }
            for report in result.reports
        ],
    }


def canonical_detection(report) -> dict:
    """Everything meaningful in a ViolationReport, including statistics."""
    return {
        "n_rows": report.n_rows,
        "strategy": report.strategy,
        "comparisons": report.comparisons,
        "violations": list(report),
        "suspects": sorted(report.suspect_cells()),
    }


def discover_uncached(table) -> dict:
    perf.clear_caches()
    with perf.caches_disabled():
        return canonical_discovery(PfdDiscoverer().discover_with_report(table))


@pytest.mark.parametrize("dataset", ["zip", "employee"])
class TestDiscoveryEquivalence:
    def _table(self, dataset, zip_table, employee_table):
        return zip_table if dataset == "zip" else employee_table

    def test_cached_equals_uncached(self, dataset, zip_table, employee_table):
        table = self._table(dataset, zip_table, employee_table)
        uncached = discover_uncached(table)
        perf.clear_caches()
        cold_caches = canonical_discovery(PfdDiscoverer().discover_with_report(table))
        warm_caches = canonical_discovery(PfdDiscoverer().discover_with_report(table))
        assert cold_caches == uncached
        assert warm_caches == uncached

    def test_parallel_equals_serial(self, dataset, zip_table, employee_table):
        from repro.engine import DataSource, build_executor, plan_discovery

        table = self._table(dataset, zip_table, employee_table)
        serial = canonical_discovery(PfdDiscoverer().discover_with_report(table))
        config = DiscoveryConfig(n_workers=2)
        plan = plan_discovery(table.n_rows, config)
        assert plan.backend == "parallel"
        parallel = canonical_discovery(
            build_executor(plan).run_discovery(plan, DataSource(table))
        )
        assert parallel == serial


@pytest.mark.parametrize("dataset", ["zip", "employee"])
@pytest.mark.parametrize(
    "strategy",
    [DetectionStrategy.INDEX, DetectionStrategy.SCAN, DetectionStrategy.BRUTEFORCE],
)
def test_detection_equivalence(dataset, strategy, zip_table, employee_table):
    table = zip_table if dataset == "zip" else employee_table
    pfds = PfdDiscoverer().discover(table)
    assert pfds, "equivalence needs at least one discovered PFD"

    perf.clear_caches()
    with perf.caches_disabled():
        uncached = canonical_detection(
            ErrorDetector(table, memo=perf.MatchMemo(enabled=False)).detect_all(
                pfds, strategy=strategy
            )
        )

    perf.clear_caches()
    cold = canonical_detection(ErrorDetector(table).detect_all(pfds, strategy=strategy))
    warm = canonical_detection(ErrorDetector(table).detect_all(pfds, strategy=strategy))
    assert cold == uncached
    assert warm == uncached
