"""Tests for delta-aware patching of per-table cached artifacts."""

import pytest

from repro.dataset.table import CellEdit, Table
from repro.detection.detector import ErrorDetector
from repro.detection.index import PatternColumnIndex
from repro.patterns import parse_pattern
from repro.perf import TABLE_ARTIFACTS
from repro.perf.table_cache import TableArtifactCache


@pytest.fixture
def table() -> Table:
    return Table.from_rows(
        ["zip", "city"],
        [["90001", "LA"], ["90002", "LA"], ["10001", "NY"]],
    )


class TestCachePatching:
    def test_narrow_delta_patches_instead_of_rebuilding(self, table):
        cache = TableArtifactCache()
        builds = []
        patches = []

        def build():
            builds.append(table.version)
            return {"built_at": table.version}

        def patch(artifact, deltas):
            patches.append(list(deltas))
            return artifact

        first = cache.get(table, "k", build, patch=patch)
        table.set_cell(0, "city", "SF")
        second = cache.get(table, "k", build, patch=patch)
        assert second is first  # patched in place, not rebuilt
        assert builds == [0]
        assert len(patches) == 1 and isinstance(patches[0][0], CellEdit)
        assert cache.stats()["patched"] == 1
        # and the patched entry is fresh: the next get is a plain hit
        assert cache.get(table, "k", build, patch=patch) is first
        assert cache.stats()["hits"] == 1

    def test_declining_patcher_forces_rebuild(self, table):
        cache = TableArtifactCache()
        builds = []

        def build():
            builds.append(table.version)
            return object()

        cache.get(table, "k", build, patch=lambda a, d: None)
        table.set_cell(0, "city", "SF")
        cache.get(table, "k", build, patch=lambda a, d: None)
        assert builds == [0, 1]
        assert cache.stats()["patched"] == 0
        assert cache.stats()["misses"] == 2

    def test_exhausted_history_forces_rebuild(self, table):
        from repro.dataset.table import MAX_DELTA_LOG

        cache = TableArtifactCache()
        builds = []

        def build():
            builds.append(table.version)
            return object()

        def patch(artifact, deltas):  # pragma: no cover - must not be called
            raise AssertionError("patch must not run on exhausted history")

        cache.get(table, "k", build, patch=patch)
        for i in range(MAX_DELTA_LOG + 1):
            table.set_cell(0, "city", f"v{i % 3}")
        assert table.deltas_since(0) is None
        cache.get(table, "k", build, patch=patch)
        assert len(builds) == 2

    def test_raising_patcher_falls_back_to_rebuild(self, table):
        # a patcher blowing up mid-replay must not poison the entry —
        # the cache rebuilds and subsequent gets are healthy again
        cache = TableArtifactCache()
        builds = []

        def build():
            builds.append(table.version)
            return object()

        def exploding_patch(artifact, deltas):
            raise ValueError("index out of sync")

        cache.get(table, "k", build, patch=exploding_patch)
        table.set_cell(0, "city", "SF")
        rebuilt = cache.get(table, "k", build, patch=exploding_patch)
        assert builds == [0, 1]
        assert cache.get(table, "k", build, patch=exploding_patch) is rebuilt
        assert cache.stats()["hits"] == 1

    def test_tables_without_delta_log_still_rebuild(self):
        class VersionOnly:
            version = 0

        cache = TableArtifactCache()
        probe = VersionOnly()
        builds = []

        def build():
            builds.append(probe.version)
            return object()

        cache.get(probe, "k", build, patch=lambda a, d: a)
        probe.version = 1
        cache.get(probe, "k", build, patch=lambda a, d: a)
        assert builds == [0, 1]


class TestColumnIndexPatching:
    """End-to-end: the detector's cached column index is patched under
    edits/appends/deletes and stays identical to a fresh build."""

    def assert_index_matches_fresh(self, table, attribute):
        patched = ErrorDetector(table).column_index(attribute)
        fresh = PatternColumnIndex(table.column_ref(attribute))
        values = set(table.column_ref(attribute))
        assert patched.n_rows == fresh.n_rows == table.n_rows
        assert patched.n_distinct == fresh.n_distinct
        for value in values:
            assert patched.rows_of_value(value) == fresh.rows_of_value(value)

    def test_index_is_patched_across_all_mutation_kinds(self, table):
        TABLE_ARTIFACTS.clear()
        detector = ErrorDetector(table)
        detector.column_index("zip")
        patched_before = TABLE_ARTIFACTS.patched

        table.set_cell(0, "zip", "10002")
        self.assert_index_matches_fresh(table, "zip")
        table.append_row(["90003", "LA"])
        self.assert_index_matches_fresh(table, "zip")
        table.delete_row(1)
        self.assert_index_matches_fresh(table, "zip")
        assert TABLE_ARTIFACTS.patched >= patched_before + 3

    def test_edits_to_other_columns_leave_the_index_untouched(self, table):
        TABLE_ARTIFACTS.clear()
        index = ErrorDetector(table).column_index("zip")
        table.set_cell(0, "city", "SF")
        assert ErrorDetector(table).column_index("zip") is index
        self.assert_index_matches_fresh(table, "zip")

    def test_patched_index_answers_pattern_lookups(self, table):
        TABLE_ARTIFACTS.clear()
        detector = ErrorDetector(table)
        pattern = parse_pattern("900\\D{2}")
        assert detector.column_index("zip").matching_rows(pattern) == [0, 1]
        table.set_cell(2, "zip", "90009")
        assert detector.column_index("zip").matching_rows(pattern) == [0, 1, 2]
        table.delete_row(0)
        assert detector.column_index("zip").matching_rows(pattern) == [0, 1]


class TestIndexPartialUpdates:
    def test_apply_edit_moves_postings(self):
        index = PatternColumnIndex(["a", "b", "a"])
        index.apply_edit(2, "a", "b")
        assert index.rows_of_value("a") == (0,)
        assert index.rows_of_value("b") == (1, 2)
        index.apply_edit(0, "a", "c")
        assert index.rows_of_value("a") == ()
        assert index.rows_of_value("c") == (0,)

    def test_apply_append_requires_next_row(self):
        index = PatternColumnIndex(["a"])
        index.apply_append(1, "b")
        assert index.n_rows == 2
        with pytest.raises(ValueError):
            index.apply_append(5, "c")

    def test_apply_delete_renumbers(self):
        index = PatternColumnIndex(["a", "b", "a", "c"])
        index.apply_delete(1, "b")
        assert index.n_rows == 3
        assert index.rows_of_value("a") == (0, 1)
        assert index.rows_of_value("c") == (2,)
        assert index.rows_of_value("b") == ()

    def test_out_of_sync_update_raises(self):
        index = PatternColumnIndex(["a"])
        with pytest.raises(ValueError):
            index.apply_edit(0, "wrong-old-value", "b")
