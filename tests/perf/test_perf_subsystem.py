"""Unit tests for the repro.perf subsystem."""

import pytest

from repro import perf
from repro.dataset.table import Table
from repro.patterns import parse_pattern
from repro.patterns.pattern import Pattern
from repro.perf.interning import InternPool
from repro.perf.lru import LruCache
from repro.perf.memo import MatchMemo
from repro.perf.table_cache import TableArtifactCache
from repro.perf.timers import StageTimers


class TestLruCache:
    def test_get_put_and_stats(self):
        cache = LruCache(maxsize=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_eviction_is_least_recently_used(self):
        cache = LruCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_get_or_compute(self):
        cache = LruCache(maxsize=4)
        calls = []
        value = cache.get_or_compute("k", lambda: calls.append(1) or "v")
        again = cache.get_or_compute("k", lambda: calls.append(1) or "v")
        assert value == again == "v"
        assert len(calls) == 1

    def test_disabled_cache_always_computes(self):
        cache = LruCache(maxsize=4)
        cache.enabled = False
        calls = []
        cache.get_or_compute("k", lambda: calls.append(1) or "v")
        cache.get_or_compute("k", lambda: calls.append(1) or "v")
        assert len(calls) == 2
        assert len(cache) == 0

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            LruCache(maxsize=0)


class TestInternPool:
    def test_interns_to_first_instance(self):
        pool = InternPool()
        first = "".join(["90", "001"])
        second = "".join(["900", "01"])
        assert first is not second  # distinct objects, equal values
        assert pool.intern(first) is first
        assert pool.intern(second) is first
        assert len(pool) == 1

    def test_clear(self):
        pool = InternPool()
        pool.intern("x")
        pool.clear()
        assert len(pool) == 0


class TestMatchMemo:
    def test_matches_memoizes_per_pattern_and_value(self):
        memo = MatchMemo()
        pattern = parse_pattern("\\D{5}")
        assert memo.matches(pattern, "90001") is True
        assert memo.matches(pattern, "90001") is True
        assert memo.matches(pattern, "banana") is False
        assert memo.stats()["misses"] == 2
        assert memo.stats()["hits"] == 1

    def test_equal_patterns_share_verdicts(self):
        memo = MatchMemo()
        first = parse_pattern("900\\D{2}")
        second = Pattern(first.elements)
        memo.matches(first, "90001")
        memo.matches(second, "90001")
        assert memo.stats()["misses"] == 1
        assert memo.stats()["hits"] == 1

    def test_bound_matcher_matches_direct_calls(self):
        memo = MatchMemo()
        pattern = parse_pattern("\\LU\\LL*")
        matches = memo.matcher(pattern)
        assert matches("John") is True
        assert matches("john") is False
        # Verdicts land in the same table the unbound API reads.
        assert memo.matches(pattern, "John") is True
        assert memo.stats()["hits"] == 1

    def test_projector_memoizes_projections(self):
        from repro.constrained import ConstrainedPattern

        memo = MatchMemo()
        q = ConstrainedPattern.parse("⟨\\D{3}⟩\\D{2}")
        project = memo.projector(q)
        assert project("90001") == ("900",)
        assert project("90001") == ("900",)
        assert project("banana") is None
        assert memo.stats()["misses"] == 2

    def test_disabled_memo_delegates(self):
        memo = MatchMemo(enabled=False)
        pattern = parse_pattern("\\D{5}")
        assert memo.matches(pattern, "90001") is True
        assert memo.stats()["misses"] == 0
        assert memo.stats()["values"] == 0

    def test_pattern_eviction_bound(self):
        memo = MatchMemo(max_patterns=2)
        for text in ("a", "b", "c"):
            memo.matches(parse_pattern(text), text)
        assert memo.stats()["patterns"] == 2


class TestTableArtifactCache:
    def test_caches_per_table_and_key(self):
        cache = TableArtifactCache()
        table = Table(["a"], [["1", "2"]])
        builds = []
        build = lambda: builds.append(1) or "artifact"
        assert cache.get(table, "k", build) == "artifact"
        assert cache.get(table, "k", build) == "artifact"
        assert len(builds) == 1
        assert cache.stats()["hits"] == 1

    def test_set_cell_invalidates(self):
        cache = TableArtifactCache()
        table = Table(["a"], [["1", "2"]])
        builds = []
        build = lambda: builds.append(1) or len(builds)
        assert cache.get(table, "k", build) == 1
        table.set_cell(0, "a", "changed")
        assert cache.get(table, "k", build) == 2
        assert len(builds) == 2

    def test_distinct_tables_do_not_share(self):
        cache = TableArtifactCache()
        first = Table(["a"], [["1"]])
        second = Table(["a"], [["1"]])  # equal contents, distinct identity
        assert cache.get(first, "k", lambda: "one") == "one"
        assert cache.get(second, "k", lambda: "two") == "two"

    def test_entry_reaped_when_table_collected(self):
        cache = TableArtifactCache()
        table = Table(["a"], [["1"]])
        cache.get(table, "k", lambda: "artifact")
        assert cache.stats()["tables"] == 1
        del table
        import gc

        gc.collect()
        assert cache.stats()["tables"] == 0

    def test_disabled_cache_rebuilds(self):
        cache = TableArtifactCache()
        cache.enabled = False
        table = Table(["a"], [["1"]])
        builds = []
        cache.get(table, "k", lambda: builds.append(1))
        cache.get(table, "k", lambda: builds.append(1))
        assert len(builds) == 2


class TestStageTimers:
    def test_accumulates_named_stages(self):
        timers = StageTimers()
        with timers.stage("mine"):
            pass
        with timers.stage("mine"):
            pass
        with timers.stage("profile"):
            pass
        assert timers.count("mine") == 2
        assert timers.count("profile") == 1
        assert timers.total("mine") >= 0.0
        assert set(timers.totals()) == {"mine", "profile"}

    def test_records_on_exception(self):
        timers = StageTimers()
        with pytest.raises(RuntimeError):
            with timers.stage("boom"):
                raise RuntimeError("fail")
        assert timers.count("boom") == 1

    def test_merge_and_summary(self):
        left, right = StageTimers(), StageTimers()
        left.add("a", 1.0)
        right.add("a", 2.0)
        right.add("b", 0.5)
        left.merge(right)
        assert left.total("a") == pytest.approx(3.0)
        assert left.count("a") == 2
        assert "a: 3.000s (n=2)" in left.summary()


class TestSharedPatternCaches:
    def test_equal_patterns_share_compiled_regex(self):
        perf.clear_caches()
        first = parse_pattern("850\\D{7}")
        second = Pattern(first.elements)
        assert first.compiled_regex() is second.compiled_regex()

    def test_equal_patterns_share_nfa(self):
        perf.clear_caches()
        first = parse_pattern("\\LU\\LL*")
        second = Pattern(first.elements)
        assert first.nfa is second.nfa

    def test_clear_caches_resets_stats(self):
        parse_pattern("abc").compiled_regex()
        perf.clear_caches()
        stats = perf.cache_stats()
        assert stats["regex"]["size"] == 0
        assert stats["match_memo"]["values"] == 0

    def test_caches_disabled_still_correct(self):
        pattern = parse_pattern("900\\D{2}")
        with perf.caches_disabled():
            assert pattern.matches("90001")
            assert not pattern.matches("80001")
        assert pattern.matches("90001")


class TestDetectorCacheInvalidation:
    def test_reused_detector_sees_set_cell_mutation(self):
        """A detector instance must not serve pre-mutation artifacts.

        Regression test: an instance-level index cache would be blind to
        ``set_cell`` (and would poison the shared version-keyed cache by
        recomputing derived rows from the stale index).
        """
        from repro.datagen import generate_zip_city_state
        from repro.detection import ErrorDetector
        from repro.discovery import PfdDiscoverer

        perf.clear_caches()
        table = generate_zip_city_state(n_rows=300, seed=23).table
        pfds = PfdDiscoverer().discover(table)
        detector = ErrorDetector(table)  # same instance across the mutation
        before = detector.detect_all(pfds, strategy="index")
        clean_row = next(
            r for r in range(table.n_rows) if (r, "state") not in before.suspect_cells()
        )
        table.set_cell(clean_row, "state", "XX")
        after = detector.detect_all(pfds, strategy="index")
        assert (clean_row, "state") in after.suspect_cells()
        # ...and fresh detectors agree (the shared cache was not poisoned)
        fresh = ErrorDetector(table).detect_all(pfds, strategy="index")
        assert fresh.suspect_cells() == after.suspect_cells()
        assert list(fresh) == list(after)


class TestDiscovererTimers:
    def test_discovery_records_stage_timings(self):
        from repro.datagen import zip_table_d2
        from repro.discovery import PfdDiscoverer

        discoverer = PfdDiscoverer()
        discoverer.discover(zip_table_d2().table)
        totals = discoverer.timers.totals()
        assert {"profile", "candidates", "mine", "assemble"} <= set(totals)
        assert all(seconds >= 0.0 for seconds in totals.values())
