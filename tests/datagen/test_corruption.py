"""Tests for the error injector and GeneratedDataset bookkeeping."""

import pytest

from repro.datagen.corruption import CorruptionSpec, ErrorInjector, GeneratedDataset, _case_flip, _typo
from repro.dataset.table import Table
import random


@pytest.fixture
def city_table():
    return Table.from_rows(
        ["zip", "city"],
        [[f"900{i:02d}", "Los Angeles"] for i in range(50)],
    )


class TestCorruptionSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            CorruptionSpec("city", error_rate=1.5)
        with pytest.raises(ValueError):
            CorruptionSpec("city", error_rate=0.1, kind="explode")


class TestValueCorruptors:
    def test_typo_changes_the_value(self):
        rng = random.Random(0)
        for value in ("Chicago", "IL", "90001", "x"):
            assert _typo(value, rng) != value

    def test_typo_on_empty_value(self):
        assert _typo("", random.Random(0)) == "?"

    def test_case_flip_changes_exactly_one_letter_case(self):
        rng = random.Random(1)
        flipped = _case_flip("IL", rng)
        assert flipped != "IL"
        assert flipped.upper() == "IL"

    def test_case_flip_without_letters_falls_back_to_typo(self):
        rng = random.Random(2)
        assert _case_flip("1234", rng) != "1234"


class TestErrorInjector:
    def test_corrupts_requested_fraction(self, city_table):
        injector = ErrorInjector(seed=3)
        dirty, cells = injector.corrupt(
            city_table, [CorruptionSpec("city", 0.1, kind="typo")]
        )
        assert len(cells) == 5
        for row, attribute in cells:
            assert attribute == "city"
            assert dirty.cell(row, attribute) != city_table.cell(row, attribute)

    def test_untouched_cells_are_identical(self, city_table):
        injector = ErrorInjector(seed=3)
        dirty, cells = injector.corrupt(
            city_table, [CorruptionSpec("city", 0.1, kind="typo")]
        )
        corrupted_rows = {row for row, _ in cells}
        for row in range(city_table.n_rows):
            if row not in corrupted_rows:
                assert dirty.row(row) == city_table.row(row)

    def test_zero_rate_still_injects_at_least_one_error(self, city_table):
        # a strictly positive rate rounds up to one cell so experiments
        # always have something to find
        injector = ErrorInjector(seed=3)
        _dirty, cells = injector.corrupt(city_table, [CorruptionSpec("city", 0.001)])
        assert len(cells) == 1

    def test_rate_zero_injects_nothing(self, city_table):
        injector = ErrorInjector(seed=3)
        dirty, cells = injector.corrupt(city_table, [CorruptionSpec("city", 0.0)])
        assert cells == set()
        assert dirty == city_table

    def test_swap_uses_alternatives(self, city_table):
        injector = ErrorInjector(seed=4)
        dirty, cells = injector.corrupt(
            city_table,
            [CorruptionSpec("city", 0.1, kind="swap", alternatives=["Chicago", "Los Angeles"])],
        )
        for row, attribute in cells:
            assert dirty.cell(row, attribute) == "Chicago"

    def test_seeded_injection_is_reproducible(self, city_table):
        first = ErrorInjector(seed=9).corrupt(city_table, [CorruptionSpec("city", 0.1)])
        second = ErrorInjector(seed=9).corrupt(city_table, [CorruptionSpec("city", 0.1)])
        assert first[1] == second[1]
        assert first[0] == second[0]

    def test_original_table_never_mutated(self, city_table):
        snapshot = city_table.copy()
        ErrorInjector(seed=5).corrupt(city_table, [CorruptionSpec("city", 0.2, kind="typo")])
        assert city_table == snapshot


class TestGeneratedDataset:
    def test_bookkeeping(self, city_table):
        injector = ErrorInjector(seed=3)
        dirty, cells = injector.corrupt(city_table, [CorruptionSpec("city", 0.1)])
        dataset = GeneratedDataset(
            name="demo", table=dirty, clean_table=city_table, error_cells=cells
        )
        assert dataset.n_errors == len(cells)
        assert dataset.error_rows() == sorted({row for row, _ in cells})
        row, attribute = next(iter(cells))
        assert dataset.is_error(row, attribute)
        assert not dataset.is_error(row, "zip")
