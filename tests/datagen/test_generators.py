"""Tests for the synthetic dataset generators."""

import pytest

from repro.datagen import (
    AREA_CODES,
    DEPARTMENTS,
    FIRST_NAMES,
    ZIP_PREFIXES,
    build_dataset,
    dataset_names,
    generate_compound_table,
    generate_employee_ids,
    generate_fullname_gender,
    generate_phone_state,
    generate_zip_city_state,
)
from repro.errors import ProjectError
from repro.patterns import parse_pattern


class TestPhoneState:
    def test_shapes_and_ground_truth(self):
        dataset = generate_phone_state(n_rows=300, seed=1, error_rate=0.05)
        assert dataset.table.n_rows == 300
        assert dataset.table.column_names() == ["phone_number", "state"]
        assert len(dataset.error_cells) == 15
        phone_pattern = parse_pattern("\\D{10}")
        for value in dataset.clean_table.column_ref("phone_number"):
            assert phone_pattern.matches(value)

    def test_area_code_determines_state_in_clean_data(self):
        dataset = generate_phone_state(n_rows=300, seed=1)
        for phone, state in zip(
            dataset.clean_table.column_ref("phone_number"),
            dataset.clean_table.column_ref("state"),
        ):
            assert AREA_CODES[phone[:3]] == state

    def test_phone_numbers_are_unique(self):
        dataset = generate_phone_state(n_rows=500, seed=2)
        numbers = dataset.clean_table.column_ref("phone_number")
        assert len(set(numbers)) == len(numbers)

    def test_errors_only_touch_state(self):
        dataset = generate_phone_state(n_rows=200, seed=3, error_rate=0.1)
        assert {attr for _row, attr in dataset.error_cells} == {"state"}

    def test_reproducibility(self):
        first = generate_phone_state(n_rows=100, seed=42)
        second = generate_phone_state(n_rows=100, seed=42)
        assert first.table == second.table
        assert first.error_cells == second.error_cells


class TestZipCityState:
    def test_prefix_semantics_in_clean_data(self):
        dataset = generate_zip_city_state(n_rows=300, seed=1)
        for zip_code, city, state in dataset.clean_table.iter_rows():
            expected_city, expected_state = ZIP_PREFIXES[zip_code[:3]]
            assert city == expected_city
            assert state == expected_state

    def test_error_families(self):
        dataset = generate_zip_city_state(
            n_rows=300, seed=1, city_error_rate=0.02, city_typo_rate=0.02,
            state_error_rate=0.02, state_case_rate=0.01,
        )
        touched_attributes = {attr for _row, attr in dataset.error_cells}
        assert touched_attributes == {"city", "state"}
        assert dataset.n_errors > 0

    def test_dirty_cells_differ_from_clean(self):
        dataset = generate_zip_city_state(n_rows=300, seed=1)
        for row, attribute in dataset.error_cells:
            assert dataset.table.cell(row, attribute) != dataset.clean_table.cell(row, attribute)


class TestFullnameGender:
    def test_first_name_determines_gender_in_clean_data(self):
        dataset = generate_fullname_gender(n_rows=300, seed=1)
        for full_name, gender in dataset.clean_table.iter_rows():
            first = full_name.split(", ")[1].split(" ")[0]
            assert FIRST_NAMES[first] == gender

    def test_format_matches_table_3(self):
        dataset = generate_fullname_gender(n_rows=100, seed=1)
        pattern = parse_pattern("\\LU\\LL*,\\ \\LU\\LL*\\A*")
        for full_name in dataset.clean_table.column_ref("full_name"):
            assert pattern.matches(full_name), full_name

    def test_errors_flip_gender(self):
        dataset = generate_fullname_gender(n_rows=200, seed=1, error_rate=0.05)
        for row, attribute in dataset.error_cells:
            assert attribute == "gender"
            assert dataset.table.cell(row, "gender") != dataset.clean_table.cell(row, "gender")


class TestEmployeeAndChembl:
    def test_employee_id_structure(self):
        dataset = generate_employee_ids(n_rows=200, seed=1)
        id_pattern = parse_pattern("\\LU-\\D-\\D{3}")
        for employee_id, department, _grade in dataset.clean_table.iter_rows():
            assert id_pattern.matches(employee_id)
            assert DEPARTMENTS[employee_id[0]] == department

    def test_chembl_prefix_determines_type(self):
        dataset = generate_compound_table(n_rows=200, seed=1)
        for record_id, record_type, _source in dataset.clean_table.iter_rows():
            prefix = "".join(c for c in record_id if c.isalpha())
            from repro.datagen.chembl import ID_PREFIXES

            assert ID_PREFIXES[prefix] == record_type


class TestRegistry:
    def test_all_names_buildable(self):
        for name in dataset_names():
            dataset = build_dataset(name)
            assert dataset.table.n_rows > 0
            assert dataset.name == name

    def test_kwargs_forwarding(self):
        dataset = build_dataset("phone_state", n_rows=50, seed=9)
        assert dataset.table.n_rows == 50

    def test_unknown_name(self):
        with pytest.raises(ProjectError):
            build_dataset("no_such_dataset")

    def test_paper_tables_present(self):
        assert "paper_d1_name" in dataset_names()
        assert "paper_d2_zip" in dataset_names()


class TestPaperExamples:
    def test_d1_matches_table_1(self, name_dataset):
        assert name_dataset.table.column_names() == ["name", "gender"]
        assert name_dataset.table.cell(3, "gender") == "M"
        assert name_dataset.clean_table.cell(3, "gender") == "F"
        assert name_dataset.error_cells == {(3, "gender")}

    def test_d2_matches_table_2(self, zip_dataset):
        assert zip_dataset.table.cell(3, "city") == "New York"
        assert zip_dataset.clean_table.cell(3, "city") == "Los Angeles"
        assert zip_dataset.error_cells == {(3, "city")}
