"""Tests for evaluation metrics and numeric helpers."""

import pytest

from repro.detection.violation import Violation, ViolationKind, ViolationReport
from repro.errors import EvaluationError
from repro.metrics.evaluation import DetectionEvaluation, evaluate_cells, evaluate_report
from repro.metrics.stats import mean, percentile, summarize_counts


class TestDetectionEvaluation:
    def test_perfect_detection(self):
        truth = {(0, "city"), (5, "city")}
        evaluation = evaluate_cells(truth, truth)
        assert evaluation.precision == 1.0
        assert evaluation.recall == 1.0
        assert evaluation.f1 == 1.0

    def test_partial_detection(self):
        detected = {(0, "city"), (1, "city"), (2, "city")}
        truth = {(0, "city"), (5, "city")}
        evaluation = evaluate_cells(detected, truth)
        assert evaluation.true_positives == 1
        assert evaluation.false_positives == 2
        assert evaluation.false_negatives == 1
        assert evaluation.precision == pytest.approx(1 / 3)
        assert evaluation.recall == pytest.approx(0.5)
        assert evaluation.f1 == pytest.approx(0.4)

    def test_empty_detection(self):
        evaluation = evaluate_cells(set(), {(0, "city")})
        assert evaluation.precision == 0.0
        assert evaluation.recall == 0.0
        assert evaluation.f1 == 0.0

    def test_empty_truth_and_detection(self):
        evaluation = evaluate_cells(set(), set())
        assert evaluation.precision == 0.0
        assert evaluation.recall == 0.0

    def test_as_row(self):
        evaluation = DetectionEvaluation(3, 1, 2)
        row = evaluation.as_row()
        assert row[:3] == (3, 1, 2)
        assert row[3] == evaluation.precision

    def test_bad_cell_shape_rejected(self):
        with pytest.raises(EvaluationError):
            evaluate_cells({(1, "a", "extra")}, set())

    def test_evaluate_report_uses_suspect_cells(self):
        report = ViolationReport(n_rows=10)
        report.add(
            Violation(
                pfd_name="psi",
                lhs_attribute="zip",
                rhs_attribute="city",
                kind=ViolationKind.CONSTANT,
                rule_index=0,
                rule_text="r",
                rows=(4,),
                observed_value="NY",
                expected_value="LA",
            )
        )
        evaluation = evaluate_report(report, {(4, "city")})
        assert evaluation.precision == 1.0
        assert evaluation.recall == 1.0


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_percentile(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)
        assert percentile([7.0], 50) == 7.0

    def test_percentile_validation(self):
        with pytest.raises(EvaluationError):
            percentile([], 50)
        with pytest.raises(EvaluationError):
            percentile([1.0], 120)

    def test_summarize_counts(self):
        summary = summarize_counts({"a": 6, "b": 4})
        assert summary["total"] == 10
        assert summary["distinct"] == 2
        assert summary["max_share"] == pytest.approx(0.6)
        assert summarize_counts({})["total"] == 0
