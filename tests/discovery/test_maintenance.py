"""Differential gate for incremental rule maintenance.

The contract of :class:`repro.discovery.maintenance.RuleMaintainer` is
absolute: after any cell-edit batch, the maintained rule set — names,
tableaux, and per-candidate accept/coverage decisions — must be
*identical* to a full monolithic re-discovery over the edited table.
The gate runs randomized edit sequences over every PR-4 generator, on
every shard-store backend, through the kernel and scalar mining paths
both (4 generators x 3 stores x 2 kernel modes x 3 seeds x 3 batches =
216 maintained re-checks).  Each case is fully determined by its test
id, so a failure replays with ``pytest -k <test id>``.
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro.anmat.session import AnmatSession, SessionState
from repro.datagen import build_dataset
from repro.datagen.corruption import CorruptionSpec, ErrorInjector
from repro.discovery import DiscoveryConfig, PfdDiscoverer
from repro.engine import PlanWarning
from repro.sharding import ShardedTable, make_shard_store

#: the PR-4 generator sweep (same shapes as tests/sharding/test_differential.py)
GENERATORS = [
    ("zip_city_state", 90, [CorruptionSpec("city", 0.05, kind="swap")]),
    ("phone_state", 80, [CorruptionSpec("state", 0.06, kind="case")]),
    ("fullname_gender", 80, [CorruptionSpec("gender", 0.08, kind="swap")]),
    ("employee_ids", 70, [CorruptionSpec("employee_id", 0.05, kind="typo")]),
]

SEEDS = [3, 11, 58]
STORES = ["memory", "spill", "object"]
KERNEL_MODES = ["on", "off"]
SHARD_ROWS = 16
BATCHES_PER_SEED = 3
EDITS_PER_BATCH = 6


def dirty_table(name, n_rows, specs, seed):
    dataset = build_dataset(name, n_rows=n_rows, seed=seed)
    dirty, _cells = ErrorInjector(seed=seed + 1).corrupt(dataset.table, specs)
    return dirty


def make_config(store, kernels):
    return DiscoveryConfig(
        min_coverage=0.4,
        allowed_violation_ratio=0.2,
        shard_rows=SHARD_ROWS,
        store=store,
        use_kernels=kernels,
    )


def make_session(name, n_rows, specs, seed, store, kernels):
    table = dirty_table(name, n_rows, specs, seed)
    sharded = ShardedTable.from_table(
        table, SHARD_ROWS, store=make_shard_store(store)
    )
    session = AnmatSession(dataset_name=name, config=make_config(store, kernels))
    session.load_table(sharded)
    return session


def apply_random_batch(session, rng):
    """A realistic interactive batch: mostly value swaps between rows,
    plus one revert-style write (same value back) to exercise the
    edited-columns superset."""
    overlay = session.table
    names = overlay.column_names()
    for _ in range(EDITS_PER_BATCH):
        row = rng.randrange(overlay.n_rows)
        column = rng.choice(names)
        donor = rng.randrange(overlay.n_rows)
        overlay.set_cell(row, column, overlay.cell(donor, column))
    # the no-op write: edit-count bumps, contents do not change
    row = rng.randrange(overlay.n_rows)
    column = rng.choice(names)
    overlay.set_cell(row, column, overlay.cell(row, column))


def rules_of(result):
    return [pfd.describe() for pfd in result.pfds]


def decisions_of(result):
    return [(r.lhs, r.rhs, r.accepted, r.coverage) for r in result.reports]


@pytest.mark.parametrize("kernels", KERNEL_MODES)
@pytest.mark.parametrize("store", STORES)
@pytest.mark.parametrize("name,n_rows,specs", GENERATORS, ids=lambda v: str(v))
class TestMaintenanceDifferential:
    def test_maintained_rules_identical_to_full_rediscovery(
        self, name, n_rows, specs, store, kernels
    ):
        for seed in SEEDS:
            session = make_session(name, n_rows, specs, seed, store, kernels)
            try:
                session.run_discovery()
                assert session.last_plan.backend == "sharded"
                rng = random.Random(seed * 1000 + 7)
                for _batch in range(BATCHES_PER_SEED):
                    apply_random_batch(session, rng)
                    result = session.recheck()
                    assert session.last_plan.rule_maintenance == "incremental"
                    full = PfdDiscoverer(session.config).discover_with_report(
                        session.table.materialize(), relation=name
                    )
                    assert rules_of(result) == rules_of(full), (
                        f"maintained rules diverged (seed={seed})"
                    )
                    assert decisions_of(result) == decisions_of(full), (
                        f"maintained mining decisions diverged (seed={seed})"
                    )
            finally:
                session.close()


@pytest.mark.parametrize(
    "name,n_rows,specs", GENERATORS[:1], ids=lambda v: str(v)
)
class TestMaintenanceFallbacks:
    """Structural changes and unsharded runs fall back to full
    re-discovery — with the fallback recorded on the plan."""

    def test_append_falls_back_to_full(self, name, n_rows, specs):
        session = make_session(name, n_rows, specs, 3, "memory", "off")
        try:
            session.run_discovery()
            template = session.table.row(0)
            session.table.append_row(template)
            with warnings.catch_warnings():
                warnings.simplefilter("error", PlanWarning)
                with pytest.raises(PlanWarning):
                    session.recheck()
            # warnings are advisory: the fallback itself succeeds
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", PlanWarning)
                session.table.append_row(template)
                result = session.recheck()
            assert session.last_plan.rule_maintenance == "full"
            full = PfdDiscoverer(session.config).discover_with_report(
                session.table.materialize(), relation=name
            )
            assert rules_of(result) == rules_of(full)
            # the fallback re-seeded: the next cell-edit batch maintains
            session.table.set_cell(1, session.table.column_names()[0], "X1")
            with warnings.catch_warnings():
                warnings.simplefilter("error", PlanWarning)
                result = session.recheck()
            assert session.last_plan.rule_maintenance == "incremental"
            full = PfdDiscoverer(session.config).discover_with_report(
                session.table.materialize(), relation=name
            )
            assert rules_of(result) == rules_of(full)
        finally:
            session.close()

    def test_delete_falls_back_to_full(self, name, n_rows, specs):
        session = make_session(name, n_rows, specs, 3, "memory", "off")
        try:
            session.run_discovery()
            session.table.delete_row(5)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", PlanWarning)
                result = session.recheck()
            assert session.last_plan.rule_maintenance == "full"
            full = PfdDiscoverer(session.config).discover_with_report(
                session.table.materialize(), relation=name
            )
            assert rules_of(result) == rules_of(full)
        finally:
            session.close()

    def test_monolithic_session_rechecks_full(self, name, n_rows, specs):
        """An eager (unsharded) session has no shard versions to diff:
        the plan records the full fallback without warning under
        ``auto``, and warns when ``incremental`` was requested."""
        table = dirty_table(name, n_rows, specs, 3)
        session = AnmatSession(
            dataset_name=name,
            config=DiscoveryConfig(min_coverage=0.4, allowed_violation_ratio=0.2),
        )
        session.load_table(table)
        session.run_discovery()
        assert session._maintainer is None
        session.table.set_cell(0, table.column_names()[0], "X0")
        with warnings.catch_warnings():
            warnings.simplefilter("error", PlanWarning)
            result = session.recheck()
        assert session.last_plan.rule_maintenance == "full"
        full = PfdDiscoverer(session.config).discover_with_report(
            session.table, relation=name
        )
        assert rules_of(result) == rules_of(full)

        session.config = session.config.with_overrides(
            rule_maintenance="incremental"
        )
        session.table.set_cell(1, table.column_names()[0], "X1")
        with pytest.warns(PlanWarning):
            session.recheck()
        assert session.last_plan.rule_maintenance == "full"

    def test_rule_maintenance_full_requested(self, name, n_rows, specs):
        """``rule_maintenance='full'`` re-discovers even with a seeded
        sharded baseline."""
        session = make_session(name, n_rows, specs, 3, "memory", "off")
        session.config = session.config.with_overrides(rule_maintenance="full")
        try:
            session.run_discovery()
            session.table.set_cell(0, session.table.column_names()[0], "X0")
            result = session.recheck()
            assert session.last_plan.rule_maintenance == "full"
            full = PfdDiscoverer(session.config).discover_with_report(
                session.table.materialize(), relation=name
            )
            assert rules_of(result) == rules_of(full)
        finally:
            session.close()

    def test_recheck_without_discovery_raises(self, name, n_rows, specs):
        from repro.errors import ProjectError

        session = make_session(name, n_rows, specs, 3, "memory", "off")
        try:
            with pytest.raises(ProjectError):
                session.recheck()
        finally:
            session.close()


class TestMaintainedDetection:
    """The full interactive loop: discover → confirm → detect → edit →
    recheck.  Confirmations survive by content, the re-detection runs
    over pair groups the maintainer carried shard-wise, and the
    violations equal a from-scratch detection over the edited table."""

    def test_recheck_after_edit_loop_redetects_identically(self):
        from repro.detection import ErrorDetector

        session = make_session(*GENERATORS[0], 3, "memory", "off")
        try:
            session.run_discovery()
            session.confirm_all()
            session.run_detection()
            rng = random.Random(99)
            overlay = session.table
            for _ in range(8):
                row = rng.randrange(overlay.n_rows)
                column = rng.choice(overlay.column_names())
                donor = rng.randrange(overlay.n_rows)
                session.edit_cell(row, column, overlay.cell(donor, column))
            assert session.state is SessionState.EDITING
            result = session.recheck()
            assert session.last_plan.rule_maintenance == "incremental"
            assert session.state is SessionState.DETECTED
            # confirmations survived by content and re-detection matches
            # a from-scratch monolithic run over the confirmed survivors
            confirmed = session.confirmed_pfds()
            assert confirmed, "every unchanged rule should stay confirmed"
            expected = (
                ErrorDetector(session.table.materialize())
                .detect_all(confirmed)
                .canonical_violations()
            )
            assert session.violations.canonical_violations() == expected
        finally:
            session.close()

    def test_unconfirmed_recheck_returns_to_discovered(self):
        session = make_session(*GENERATORS[0], 3, "memory", "off")
        try:
            session.run_discovery()
            session.table.set_cell(0, session.table.column_names()[0], "X0")
            session.recheck()
            assert session.state is SessionState.DISCOVERED
            assert session.violations is None
        finally:
            session.close()
