"""Tests for the pattern-tuple decision function ``f``."""

import pytest

from repro.discovery.config import DiscoveryConfig
from repro.discovery.decision import MajorityDecision
from repro.discovery.inverted_index import InvertedList


def decide_for(lhs, rhs, mode, key, position, config=None):
    index = InvertedList.build(lhs, rhs, mode=mode)
    entry = index.entry(key, position)
    return MajorityDecision().decide(entry, lhs, config or DiscoveryConfig())


class TestPrefixEntries:
    LHS = ["90001", "90002", "90003", "90088", "60601"]
    RHS = ["Los Angeles"] * 4 + ["Chicago"]

    def test_accepts_agreeing_prefix(self):
        candidate = decide_for(self.LHS, self.RHS, "prefix", "900", 0)
        assert candidate is not None
        assert candidate.rhs_constant == "Los Angeles"
        assert candidate.pattern_text == "900\\D{2}"
        assert candidate.support == 4
        assert candidate.agreement == 1.0
        assert list(candidate.covered_tuple_ids) == [0, 1, 2, 3]

    def test_rejects_low_support(self):
        config = DiscoveryConfig(min_support=5)
        assert decide_for(self.LHS, self.RHS, "prefix", "900", 0, config) is None

    def test_rejects_disagreeing_rhs(self):
        rhs = ["Los Angeles", "Los Angeles", "New York", "New York", "Chicago"]
        candidate = decide_for(self.LHS, rhs, "prefix", "900", 0)
        assert candidate is None

    def test_tolerates_violations_within_ratio(self):
        lhs = [f"900{i:02d}" for i in range(20)]
        rhs = ["Los Angeles"] * 19 + ["New York"]
        config = DiscoveryConfig(allowed_violation_ratio=0.1)
        candidate = decide_for(lhs, rhs, "prefix", "900", 0, config)
        assert candidate is not None
        assert candidate.agreement == pytest.approx(0.95)
        assert list(candidate.violating_tuple_ids) == [19]

    def test_render_format(self):
        candidate = decide_for(self.LHS, self.RHS, "prefix", "900", 0)
        assert candidate.render() == "900\\D{2}::0, 4"

    def test_rejects_empty_rhs_majority(self):
        rhs = ["", "", "", "", "Chicago"]
        assert decide_for(self.LHS, rhs, "prefix", "900", 0) is None


class TestTokenEntries:
    LHS = [
        "Holloway, Donald E.",
        "Kimbell, Donald",
        "Smith, Donald R.",
        "Jones, Stacey R.",
    ]
    RHS = ["M", "M", "M", "F"]

    def test_builds_contains_token_pattern(self):
        candidate = decide_for(self.LHS, self.RHS, "token", "Donald", 1)
        assert candidate is not None
        assert candidate.rhs_constant == "M"
        # the tableau pattern has the Table 3 shape: \A*,\ Donald\A*
        assert candidate.pattern_text == "\\A*,\\ Donald\\A*"
        pattern = candidate.lhs_pattern
        assert pattern.matches("Holloway, Donald E.")
        assert pattern.matches("Kimbell, Donald")
        assert not pattern.matches("Jones, Stacey R.")

    def test_first_position_token_uses_prefix_shape(self):
        lhs = ["John Charles", "John Bosco", "Susan Boyle"]
        rhs = ["M", "M", "F"]
        candidate = decide_for(lhs, rhs, "token", "John", 0)
        assert candidate is not None
        assert candidate.lhs_pattern.matches("John Charles")
        assert candidate.lhs_pattern.matches("John Bosco")
        assert not candidate.lhs_pattern.matches("Susan Boyle")

    def test_rejects_token_with_mixed_rhs(self):
        lhs = ["Smith, Alex", "Brown, Alex"]
        rhs = ["M", "F"]
        assert decide_for(lhs, rhs, "token", "Alex", 1) is None
