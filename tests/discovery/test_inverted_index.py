"""Tests for the hash-based inverted list (Figure 2, line 8)."""

import pytest

from repro.discovery.inverted_index import InvertedList, Posting


class TestInvertedListBuild:
    def test_token_mode_keys(self):
        lhs = ["Holloway, Donald E.", "Kimbell, Donald", "Jones, Stacey R."]
        rhs = ["M", "M", "F"]
        index = InvertedList.build(lhs, rhs, mode="token")
        assert ("Donald", 1) in index
        assert ("Stacey", 1) in index
        assert ("Holloway", 0) in index

    def test_prefix_mode_keys(self):
        lhs = ["90001", "90002", "60601"]
        rhs = ["LA", "LA", "Chicago"]
        index = InvertedList.build(lhs, rhs, mode="prefix")
        assert ("900", 0) in index
        assert ("9", 0) in index
        assert ("606", 0) in index

    def test_ngram_mode_keys(self):
        index = InvertedList.build(["90001"], ["LA"], mode="ngram", ngram_size=3)
        assert ("900", 0) in index
        assert ("000", 1) in index
        assert ("001", 2) in index

    def test_empty_lhs_values_are_skipped(self):
        index = InvertedList.build(["", "90001"], ["x", "y"], mode="prefix")
        entry = index.entry("9", 0)
        assert entry.tuple_ids() == [1]

    def test_rhs_tokenization_mode(self):
        index = InvertedList.build(
            ["A1"], ["New York"], mode="prefix", tokenize_rhs=True
        )
        entry = index.entry("A", 0)
        rhs_tokens = {p.rhs_token for p in entry.postings}
        assert rhs_tokens == {"New", "York"}
        assert {p.rhs_value for p in entry.postings} == {"New York"}


class TestInvertedEntry:
    @pytest.fixture
    def entry(self):
        index = InvertedList()
        index.insert("Donald", Posting(0, 1, "Donald", "M"))
        index.insert("Donald", Posting(1, 1, "Donald", "M"))
        index.insert("Donald", Posting(2, 1, "Donald", "F"))
        index.insert("Donald", Posting(2, 1, "Donald", "F"))  # duplicate tuple
        return index.entry("Donald", 1)

    def test_support_counts_distinct_tuples(self, entry):
        assert entry.support == 3

    def test_tuple_ids_sorted_and_unique(self, entry):
        assert entry.tuple_ids() == [0, 1, 2]

    def test_rhs_distribution(self, entry):
        assert entry.rhs_distribution() == {"M": 2, "F": 1}

    def test_top_rhs(self, entry):
        value, count = entry.top_rhs()
        assert value == "M"
        assert count == 2

    def test_token_and_position_accessors(self, entry):
        assert entry.token == "Donald"
        assert entry.position == 1


class TestEntriesIteration:
    def test_min_support_filter(self):
        index = InvertedList()
        index.insert("a", Posting(0, 0, "a", "x"))
        index.insert("b", Posting(0, 0, "b", "x"))
        index.insert("b", Posting(1, 0, "b", "x"))
        tokens = {entry.token for entry in index.entries(min_support=2)}
        assert tokens == {"b"}

    def test_len(self):
        index = InvertedList()
        assert len(index) == 0
        index.insert("a", Posting(0, 0, "a", "x"))
        assert len(index) == 1
