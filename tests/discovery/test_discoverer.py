"""Tests for the end-to-end Discover-PFDs driver."""

import pytest

from repro.discovery.config import DiscoveryConfig
from repro.discovery.discoverer import PfdDiscoverer
from repro.pfd.satisfaction import find_tableau_violations


class TestOnZipCityState:
    @pytest.fixture(scope="class")
    def result(self, request):
        dataset = request.getfixturevalue("small_zip_city_state")
        return PfdDiscoverer().discover_with_report(dataset.table, relation="D5")

    def test_discovers_zip_to_city_and_state(self, result):
        assert result.pfds_for("zip", "city")
        assert result.pfds_for("zip", "state")

    def test_discovers_both_kinds(self, result):
        assert result.constant_pfds()
        assert result.variable_pfds()

    def test_variable_zip_city_uses_three_digit_prefix(self, result):
        variables = [p for p in result.pfds_for("zip", "city") if p.is_variable]
        assert variables
        text = variables[0].lhs_cell_of(variables[0].tableau[0]).to_text()
        assert text == "⟨\\D{3}⟩\\D{2}"

    def test_variable_zip_state_uses_two_digit_prefix(self, result):
        variables = [p for p in result.pfds_for("zip", "state") if p.is_variable]
        assert variables
        text = variables[0].lhs_cell_of(variables[0].tableau[0]).to_text()
        assert text == "⟨\\D{2}⟩\\D{3}"

    def test_constant_rules_hold_on_clean_data(self, result, small_zip_city_state):
        clean = small_zip_city_state.clean_table
        for pfd in result.constant_pfds():
            report = find_tableau_violations(clean, pfd)
            # constant rules were mined from dirty data, so allow a tiny
            # residue, but they must essentially hold on the clean table
            assert report.violation_ratio <= 0.02, pfd.describe()

    def test_relation_and_names_assigned(self, result):
        assert all(p.relation == "D5" for p in result.pfds)
        names = [p.name for p in result.pfds]
        assert len(names) == len(set(names))

    def test_reports_cover_all_candidates(self, result):
        assert len(result.reports) >= len({(p.lhs_attribute, p.rhs_attribute) for p in result.pfds})
        assert result.summary()["pfds"] == len(result.pfds)

    def test_elapsed_time_recorded(self, result):
        assert result.elapsed_seconds > 0
        assert all(r.elapsed_seconds >= 0 for r in result.reports)


class TestOnPhoneState:
    def test_area_code_rules(self, small_phone_state):
        result = PfdDiscoverer().discover_with_report(small_phone_state.table, relation="D1")
        constants = [p for p in result.pfds_for("phone_number", "state") if p.is_constant]
        assert constants
        tableau_texts = {
            constants[0].lhs_cell_of(row).to_text(): constants[0].rhs_cell_of(row)
            for row in constants[0].tableau
        }
        # every tableau row must be an area-code prefix of a 10-digit number
        for lhs_text, rhs in tableau_texts.items():
            assert "\\D{7}" in lhs_text or "\\D" in lhs_text
            assert len(rhs) == 2

    def test_plain_fd_phone_to_state_is_useless_but_pfd_is_not(self, small_phone_state):
        from repro.pfd.fd import FunctionalDependency

        # The classical FD trivially holds because phone numbers are unique...
        fd = FunctionalDependency.of("phone_number", "state")
        assert fd.holds_on(small_phone_state.table)
        # ...yet the PFD detects the injected wrong-state errors.
        result = PfdDiscoverer().discover_with_report(small_phone_state.table)
        from repro.detection.detector import ErrorDetector

        report = ErrorDetector(small_phone_state.table).detect_all(result.pfds)
        flagged_rows = set(report.suspect_rows())
        true_rows = {row for row, _ in small_phone_state.error_cells}
        assert true_rows & flagged_rows


class TestOnFullNames:
    def test_first_name_gender_dependency(self, small_fullname_gender):
        result = PfdDiscoverer().discover_with_report(small_fullname_gender.table, relation="D2")
        pfds = result.pfds_for("full_name", "gender")
        assert pfds
        constants = [p for p in pfds if p.is_constant]
        assert constants
        lhs_texts = [constants[0].lhs_cell_of(row).to_text() for row in constants[0].tableau]
        assert any(",\\ " in text for text in lhs_texts)


class TestConfigurationEffects:
    def test_high_coverage_threshold_suppresses_constant_pfds(self, small_fullname_gender):
        strict = PfdDiscoverer(DiscoveryConfig(min_coverage=0.99))
        relaxed = PfdDiscoverer(DiscoveryConfig(min_coverage=0.3))
        strict_result = strict.discover_with_report(small_fullname_gender.table)
        relaxed_result = relaxed.discover_with_report(small_fullname_gender.table)
        assert len(relaxed_result.constant_pfds()) >= len(strict_result.constant_pfds())

    def test_disabling_variable_discovery(self, small_zip_city_state):
        config = DiscoveryConfig(discover_variable=False)
        result = PfdDiscoverer(config).discover_with_report(small_zip_city_state.table)
        assert result.variable_pfds() == []
        assert result.constant_pfds()

    def test_disabling_constant_discovery(self, small_zip_city_state):
        config = DiscoveryConfig(discover_constant=False)
        result = PfdDiscoverer(config).discover_with_report(small_zip_city_state.table)
        assert result.constant_pfds() == []
        assert result.variable_pfds()

    def test_discover_returns_plain_list(self, small_zip_city_state):
        pfds = PfdDiscoverer().discover(small_zip_city_state.table)
        assert isinstance(pfds, list)
        assert pfds
