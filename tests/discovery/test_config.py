"""Tests for DiscoveryConfig validation and helpers."""

import pytest

from repro.discovery.config import DiscoveryConfig
from repro.errors import DiscoveryError


class TestValidation:
    def test_defaults_are_valid(self):
        config = DiscoveryConfig()
        assert 0 <= config.min_coverage <= 1
        assert config.min_support >= 1

    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_invalid_coverage(self, value):
        with pytest.raises(DiscoveryError):
            DiscoveryConfig(min_coverage=value)

    @pytest.mark.parametrize("value", [-0.01, 1.0, 2.0])
    def test_invalid_violation_ratio(self, value):
        with pytest.raises(DiscoveryError):
            DiscoveryConfig(allowed_violation_ratio=value)

    def test_invalid_support(self):
        with pytest.raises(DiscoveryError):
            DiscoveryConfig(min_support=0)

    def test_invalid_token_mode(self):
        with pytest.raises(DiscoveryError):
            DiscoveryConfig(token_mode="bogus")

    def test_invalid_ngram_size(self):
        with pytest.raises(DiscoveryError):
            DiscoveryConfig(ngram_size=0)

    def test_invalid_tableau_rows(self):
        with pytest.raises(DiscoveryError):
            DiscoveryConfig(max_tableau_rows=0)


class TestHelpers:
    def test_min_agreement(self):
        config = DiscoveryConfig(allowed_violation_ratio=0.1)
        assert config.min_agreement == pytest.approx(0.9)

    def test_effective_prefix_lengths_default(self):
        config = DiscoveryConfig()
        assert list(config.effective_prefix_lengths(5)) == [1, 2, 3, 4]

    def test_effective_prefix_lengths_explicit(self):
        config = DiscoveryConfig(prefix_lengths=(2, 3, 10))
        assert list(config.effective_prefix_lengths(5)) == [2, 3]

    def test_with_overrides(self):
        config = DiscoveryConfig()
        updated = config.with_overrides(min_coverage=0.9, min_support=5)
        assert updated.min_coverage == 0.9
        assert updated.min_support == 5
        # the original is unchanged
        assert config.min_coverage != 0.9

    def test_with_overrides_validates(self):
        with pytest.raises(DiscoveryError):
            DiscoveryConfig().with_overrides(min_coverage=3.0)
