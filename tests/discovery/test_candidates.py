"""Tests for candidate dependency generation (Figure 2, line 1)."""

import random

import pytest

from repro.dataset.table import Table
from repro.discovery.candidates import candidate_dependencies
from repro.discovery.config import DiscoveryConfig


def pairs(candidates):
    return {(c.lhs, c.rhs) for c in candidates}


class TestCandidateGeneration:
    def test_zip_city_state_candidates(self, small_zip_city_state):
        candidates = candidate_dependencies(small_zip_city_state.table)
        found = pairs(candidates)
        assert ("zip", "city") in found
        assert ("zip", "state") in found
        assert ("city", "state") in found

    def test_unique_id_is_not_a_learnable_rhs(self):
        # a key column (every value distinct) can never be agreed upon by
        # two tuples, so it is useless as an RHS
        table = Table.from_rows(
            ["row_id", "code", "label"],
            [[f"id-{i:04d}", f"C{i % 5}", "x" if i % 2 else "y"] for i in range(60)],
        )
        candidates = candidate_dependencies(table)
        assert all(c.rhs != "row_id" for c in candidates)

    def test_phone_state_direction(self, small_phone_state):
        candidates = candidate_dependencies(small_phone_state.table)
        found = pairs(candidates)
        assert ("phone_number", "state") in found
        assert ("state", "phone_number") not in found

    def test_lhs_mode_selection(self, small_phone_state, small_fullname_gender):
        phone_candidates = candidate_dependencies(small_phone_state.table)
        name_candidates = candidate_dependencies(small_fullname_gender.table)
        phone_modes = {c.lhs_mode for c in phone_candidates if c.lhs == "phone_number"}
        name_modes = {c.lhs_mode for c in name_candidates if c.lhs == "full_name"}
        assert phone_modes == {"prefix"}
        assert name_modes == {"token"}

    def test_forced_token_mode(self, small_phone_state):
        config = DiscoveryConfig(token_mode="ngram")
        candidates = candidate_dependencies(small_phone_state.table, config)
        assert {c.lhs_mode for c in candidates} == {"ngram"}

    def test_pure_measure_columns_are_pruned(self):
        rng = random.Random(1)
        rows = [
            [str(rng.randint(0, 10_000)), f"group{i % 3}", str(rng.random())]
            for i in range(100)
        ]
        table = Table.from_rows(["measure", "group", "score"], rows)
        candidates = candidate_dependencies(table)
        assert all(c.lhs not in ("measure", "score") for c in candidates)

    def test_candidates_sorted_by_rhs_cardinality(self, small_zip_city_state):
        candidates = candidate_dependencies(small_zip_city_state.table)
        zip_targets = [c.rhs for c in candidates if c.lhs == "zip"]
        # state (fewer distinct values) should be tried before city
        assert zip_targets.index("state") < zip_targets.index("city")

    def test_empty_columns_are_skipped(self):
        table = Table.from_rows(
            ["code", "empty", "label"],
            [[f"A{i:03d}", "", "x" if i % 2 else "y"] for i in range(40)],
        )
        candidates = candidate_dependencies(table)
        assert all("empty" not in (c.lhs, c.rhs) for c in candidates)

    def test_max_candidate_columns_limit(self, small_zip_city_state):
        config = DiscoveryConfig(max_candidate_columns=1)
        candidates = candidate_dependencies(small_zip_city_state.table, config)
        assert len({c.lhs for c in candidates}) <= 1

    def test_str_rendering(self, small_zip_city_state):
        candidates = candidate_dependencies(small_zip_city_state.table)
        assert "->" in str(candidates[0])
