"""Tests for the constant and variable PFD miners."""

import pytest

from repro.discovery.config import DiscoveryConfig
from repro.discovery.constant_miner import ConstantPfdMiner
from repro.discovery.variable_miner import VariablePfdMiner


class TestConstantMinerOnZips:
    LHS = [f"900{i:02d}" for i in range(10)] + [f"606{i:02d}" for i in range(10)]
    RHS = ["Los Angeles"] * 10 + ["Chicago"] * 10

    def test_finds_one_rule_per_city(self):
        miner = ConstantPfdMiner(DiscoveryConfig())
        rows = miner.mine(self.LHS, self.RHS, mode="prefix")
        by_rhs = {row.rhs_constant: row for row in rows}
        assert set(by_rhs) == {"Los Angeles", "Chicago"}
        # the LA rule must cover every 900xx zip and reject the Chicago zips
        la_pattern = by_rhs["Los Angeles"].lhs_pattern
        assert all(la_pattern.matches(zip_code) for zip_code in self.LHS[:10])
        assert not any(la_pattern.matches(zip_code) for zip_code in self.LHS[10:])
        chicago_pattern = by_rhs["Chicago"].lhs_pattern
        assert all(chicago_pattern.matches(zip_code) for zip_code in self.LHS[10:])

    def test_redundant_specific_patterns_are_suppressed(self):
        miner = ConstantPfdMiner(DiscoveryConfig())
        rows = miner.mine(self.LHS, self.RHS, mode="prefix")
        # prefixes like 9000, 90001 cover no additional tuples and must be dropped
        assert len(rows) == 2

    def test_coverage(self):
        miner = ConstantPfdMiner(DiscoveryConfig())
        rows = miner.mine(self.LHS, self.RHS, mode="prefix")
        assert miner.coverage(rows, self.LHS) == 1.0
        assert miner.coverage([], self.LHS) == 0.0

    def test_max_tableau_rows_cap(self):
        config = DiscoveryConfig(max_tableau_rows=1)
        rows = ConstantPfdMiner(config).mine(self.LHS, self.RHS, mode="prefix")
        assert len(rows) == 1

    def test_dirty_rhs_within_tolerance(self):
        rhs = list(self.RHS)
        rhs[0] = "New York"  # one error out of ten LA rows
        config = DiscoveryConfig(allowed_violation_ratio=0.15)
        rows = ConstantPfdMiner(config).mine(self.LHS, rhs, mode="prefix")
        la_rows = [r for r in rows if r.rhs_constant == "Los Angeles"]
        assert la_rows and list(la_rows[0].violating_tuple_ids) == [0]


class TestConstantMinerOnNames:
    LHS = [
        "Holloway, Donald E.",
        "Kimbell, Donald",
        "Smith, Donald R.",
        "Jones, Stacey R.",
        "Otillio, Stacey",
    ]
    RHS = ["M", "M", "M", "F", "F"]

    def test_finds_first_name_rules(self):
        rows = ConstantPfdMiner(DiscoveryConfig()).mine(self.LHS, self.RHS, mode="token")
        patterns = {row.pattern_text: row.rhs_constant for row in rows}
        assert patterns.get("\\A*,\\ Donald\\A*") == "M"
        assert any("Stacey" in text for text in patterns)


class TestVariableMinerPrefix:
    def test_finds_three_digit_zip_prefix(self):
        lhs, rhs = [], []
        for prefix, city in (("900", "LA"), ("906", "Whittier"), ("606", "Chicago"), ("613", "Ottawa")):
            for i in range(12):
                lhs.append(f"{prefix}{i:02d}")
                rhs.append(city)
        config = DiscoveryConfig(min_coverage=0.8)
        candidates = VariablePfdMiner(config).mine(lhs, rhs, mode="prefix")
        assert len(candidates) == 1
        candidate = candidates[0]
        # 2-digit prefixes mix LA/Whittier and Chicago/Ottawa, so the miner
        # must settle on the 3-digit prefix.
        assert candidate.constrained_pattern.to_text() == "⟨\\D{3}⟩\\D{2}"
        assert candidate.agreement == 1.0
        assert candidate.n_blocks == 4

    def test_prefers_most_general_prefix(self):
        lhs = [f"90{i:03d}" for i in range(20)] + [f"60{i:03d}" for i in range(20)]
        rhs = ["CA"] * 20 + ["IL"] * 20
        candidates = VariablePfdMiner(DiscoveryConfig()).mine(lhs, rhs, mode="prefix")
        assert candidates[0].constrained_pattern.to_text() == "⟨\\D⟩\\D{4}"

    def test_no_candidate_when_rhs_is_random_per_row(self):
        lhs = [f"{i:05d}" for i in range(40)]
        rhs = [f"city{i}" for i in range(40)]
        assert VariablePfdMiner(DiscoveryConfig()).mine(lhs, rhs, mode="prefix") == []

    def test_no_candidate_for_tiny_input(self):
        assert VariablePfdMiner(DiscoveryConfig()).mine(["90001"], ["LA"], mode="prefix") == []

    def test_violations_within_tolerance_still_accepted(self):
        lhs = [f"900{i:02d}" for i in range(50)]
        rhs = ["LA"] * 48 + ["NY", "NY"]
        config = DiscoveryConfig(allowed_violation_ratio=0.1, min_coverage=0.5)
        candidates = VariablePfdMiner(config).mine(lhs, rhs, mode="prefix")
        assert candidates
        assert candidates[0].agreement >= 0.9


class TestVariableMinerTokens:
    def test_finds_first_name_position(self):
        lhs, rhs = [], []
        names = [("Donald", "M"), ("Stacey", "F"), ("Alan", "M"), ("Mary", "F")]
        # five surnames against four first names so the surname does NOT
        # accidentally determine the gender
        surnames = ["Holloway,", "Jones,", "Kimbell,", "Smith,", "Otillio,"]
        for i in range(40):
            first, gender = names[i % len(names)]
            lhs.append(f"{surnames[i % len(surnames)]} {first}")
            rhs.append(gender)
        candidates = VariablePfdMiner(DiscoveryConfig()).mine(lhs, rhs, mode="token")
        assert len(candidates) == 1
        candidate = candidates[0]
        assert "determines the RHS" in candidate.description
        q = candidate.constrained_pattern
        # tuples sharing the first name (token 1) are equivalent
        assert q.equivalent("Holloway, Donald", "Smith, Donald")
        assert not q.equivalent("Holloway, Donald", "Jones, Stacey")

    def test_surname_position_is_rejected_when_it_does_not_determine(self):
        # token 0 (the surname) does NOT determine gender here, token 1 does
        lhs = ["Holloway, Donald", "Holloway, Stacey", "Jones, Donald", "Jones, Stacey"] * 5
        rhs = ["M", "F", "M", "F"] * 5
        candidates = VariablePfdMiner(DiscoveryConfig()).mine(lhs, rhs, mode="token")
        if candidates:  # if anything is found it must be the first-name position
            q = candidates[0].constrained_pattern
            assert q.equivalent("Holloway, Donald", "Jones, Donald")

    def test_empty_values_are_ignored(self):
        lhs = ["", "Holloway, Donald", "Smith, Donald", "Jones, Stacey", "Brown, Stacey"]
        rhs = ["M", "M", "M", "F", "F"]
        candidates = VariablePfdMiner(DiscoveryConfig(min_coverage=0.5)).mine(lhs, rhs, mode="token")
        assert isinstance(candidates, list)
