"""Lifecycle, degrade, and warm-cache behavior of the persistent
:class:`~repro.engine.worker_pool.WorkerPool`.

The pool is the session's process fan-out: lazily started, reused across
discovery → detect → recheck, closed with the session.  These tests pin
the contract: reuse (same pool object, same worker processes), idempotent
close, genuine worker exceptions propagating, fork-unavailable and
broken-pool degrades that re-run *only* unfinished payloads and surface
as ``PlanWarning``-visible decisions, and no leaked worker processes
after an ``AnmatSession`` context-manager exit.
"""

from __future__ import annotations

import os
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.anmat.session import AnmatSession
from repro.datagen import build_dataset
from repro.discovery.config import DiscoveryConfig
from repro.engine import PlanWarning, WorkerPool, process_map
from repro.engine import worker_pool as worker_pool_module


def _square(value):
    return value * value


def _fail_on_three(value):
    if value == 3:
        raise ValueError("payload three is poisoned")
    return value


def _pid_of(_value):
    return os.getpid()


# -- mapping basics --------------------------------------------------------------


def test_map_returns_results_in_payload_order():
    with WorkerPool(2) as pool:
        assert pool.map(_square, [3, 1, 4, 1, 5]) == [9, 1, 16, 1, 25]


def test_map_empty_and_single_payload_stay_serial():
    with WorkerPool(2) as pool:
        assert pool.map(_square, []) == []
        assert pool.map(_square, [7]) == [49]
        # neither map justified forking workers
        assert not pool.started


def test_single_worker_pool_never_forks():
    with WorkerPool(1) as pool:
        assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert not pool.started


def test_worker_exception_propagates():
    with WorkerPool(2) as pool:
        with pytest.raises(ValueError, match="poisoned"):
            pool.map(_fail_on_three, [1, 2, 3, 4])
        # a genuine worker error does not degrade the pool
        assert not pool.broken
        assert pool.map(_square, [2, 3]) == [4, 9]


def test_pool_reuses_the_same_worker_processes():
    with WorkerPool(2) as pool:
        first = set(pool.map(_pid_of, list(range(8))))
        second = set(pool.map(_pid_of, list(range(8))))
        assert pool.started
        assert first == second, "a new map should reuse the warm processes"
        assert os.getpid() not in first


# -- lifecycle -------------------------------------------------------------------


def test_close_is_idempotent_and_degrades_to_serial():
    pool = WorkerPool(2)
    assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
    pool.close()
    pool.close()  # idempotent
    assert pool.closed
    # a closed pool still serves maps, serially in-process
    assert pool.map(_pid_of, [0, 1]) == [os.getpid(), os.getpid()]


def test_close_joins_worker_processes():
    pool = WorkerPool(2)
    pool.map(_square, [1, 2, 3, 4])
    processes = list(pool._executor._processes.values())
    assert processes
    pool.close()
    assert all(not process.is_alive() for process in processes)


# -- degrade paths ---------------------------------------------------------------


class _UnavailableExecutor:
    """Stands in for ProcessPoolExecutor in fork-less sandboxes."""

    def __init__(self, max_workers):
        raise OSError("fork unavailable")


class _FlakyExecutor:
    """Completes the first ``fail_after`` submissions inline, then breaks
    like a pool whose workers were killed mid-map."""

    def __init__(self, max_workers, fail_after=2):
        self.fail_after = fail_after
        self.submitted = 0

    def submit(self, fn, payload):
        future = Future()
        if self.submitted < self.fail_after:
            future.set_result(fn(payload))
        else:
            future.set_exception(BrokenProcessPool("workers died"))
        self.submitted += 1
        return future

    def shutdown(self, wait=True):
        pass


def test_fork_unavailable_degrades_serially_with_plan_warning(monkeypatch):
    monkeypatch.setattr(
        worker_pool_module, "ProcessPoolExecutor", _UnavailableExecutor
    )
    pool = WorkerPool(2)
    with pytest.warns(PlanWarning, match="could not start"):
        assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
    assert pool.broken
    assert any("could not start" in line for line in pool.take_decisions())
    # the degrade is permanent and quiet afterwards: no pool restart, no
    # second warning
    assert pool.map(_square, [5, 6]) == [25, 36]
    assert pool.take_decisions() == []


def test_broken_pool_reruns_only_unfinished_payloads(monkeypatch):
    monkeypatch.setattr(worker_pool_module, "ProcessPoolExecutor", _FlakyExecutor)
    calls = []

    def tracked(value):
        calls.append(value)
        return value * 10

    pool = WorkerPool(2)
    with pytest.warns(PlanWarning, match="broke mid-map"):
        assert pool.map(tracked, [1, 2, 3, 4]) == [10, 20, 30, 40]
    # payloads 1 and 2 completed before the break (inline, so recorded
    # once); only 3 and 4 were re-run serially — nothing ran twice
    assert calls == [1, 2, 3, 4]
    assert pool.broken


def test_process_map_records_degrade_as_plan_decision(monkeypatch):
    monkeypatch.setattr(
        worker_pool_module, "ProcessPoolExecutor", _UnavailableExecutor
    )
    decisions = []
    with pytest.warns(PlanWarning):
        results = process_map(_square, [1, 2, 3], n_workers=2, decisions=decisions)
    assert results == [1, 4, 9]
    assert any("serially in-process" in line for line in decisions)


# -- warm cache ------------------------------------------------------------------


def test_map_cached_skips_recompute_on_same_keys():
    calls = []

    def tracked(value):
        calls.append(value)
        return value + 100

    pool = WorkerPool(1)  # serial: calls are observable in-process
    keys = [("shard", 0, 0), ("shard", 1, 0)]
    assert pool.map_cached(tracked, keys, payloads=[1, 2]) == [101, 102]
    assert calls == [1, 2]
    # same keys: results come from the warm cache, payloads never touched
    def explode(_index):
        raise AssertionError("payload_for must not be called on a warm hit")

    assert pool.map_cached(tracked, keys, payload_for=explode) == [101, 102]
    assert calls == [1, 2]
    assert pool.warm_hits == 2
    # a changed key (bumped shard version) misses and recomputes
    bumped = [("shard", 0, 1), ("shard", 1, 0)]
    assert pool.map_cached(tracked, bumped, payloads=[5, 2]) == [105, 102]
    assert calls == [1, 2, 5]
    pool.close()


def test_map_cached_none_keys_never_cache():
    calls = []

    def tracked(value):
        calls.append(value)
        return value

    pool = WorkerPool(1)
    assert pool.map_cached(tracked, [None, None], payloads=[1, 2]) == [1, 2]
    assert pool.map_cached(tracked, [None, None], payloads=[1, 2]) == [1, 2]
    assert calls == [1, 2, 1, 2]
    assert pool.warm_hits == 0
    pool.close()


def test_warm_cache_is_bounded_lru():
    pool = WorkerPool(1, warm_cache_entries=2)
    pool.map_cached(_square, ["a", "b"], payloads=[2, 3])
    pool.map_cached(_square, ["c"], payloads=[4])  # evicts "a"
    pool.map_cached(_square, ["a"], payloads=[2])  # miss again
    assert pool.warm_hits == 0
    pool.map_cached(_square, ["c"], payloads=[4])  # still resident
    assert pool.warm_hits == 1
    pool.close()


def test_clear_warm_cache_forgets_everything():
    pool = WorkerPool(1)
    pool.map_cached(_square, ["k"], payloads=[3])
    pool.clear_warm_cache()
    pool.map_cached(_square, ["k"], payloads=[3])
    assert pool.warm_hits == 0
    pool.close()


# -- session lifecycle -----------------------------------------------------------


def _session_config():
    # kernels off: the vectorized mining path streams shards in-process,
    # so the scalar path is the one that exercises the pooled fan-out
    return DiscoveryConfig(
        min_coverage=0.4,
        allowed_violation_ratio=0.2,
        shard_rows=13,
        n_workers=2,
        use_kernels="off",
    )


def test_session_reuses_one_pool_across_discovery_detect_recheck():
    dataset = build_dataset("zip_city_state", n_rows=90, seed=11)
    with AnmatSession(dataset_name="pool-reuse", config=_session_config()) as session:
        session.load_table(dataset.table)
        session.run_discovery()
        pool = session._worker_pool
        assert pool is not None and not pool.closed
        maps_after_discovery = pool.maps_run
        assert maps_after_discovery > 0
        session.confirm_all()
        session.run_detection()
        assert session._worker_pool is pool, "detection must reuse the pool"
        assert pool.maps_run > maps_after_discovery
        session.edit_cell(0, "city", "")
        session.recheck()
        assert session._worker_pool is pool, "recheck must reuse the pool"
    assert pool.closed


def test_session_second_discovery_hits_the_warm_cache():
    dataset = build_dataset("zip_city_state", n_rows=90, seed=11)
    with AnmatSession(dataset_name="warm", config=_session_config()) as session:
        session.load_table(dataset.table)
        first = session.run_discovery()
        pool = session._worker_pool
        assert pool.warm_hits == 0
        second = session.run_discovery()
        assert pool.warm_hits > 0, "unchanged shards should hit the warm cache"
        assert [p.describe() for p in first.pfds] == [
            p.describe() for p in second.pfds
        ]


def test_per_call_pool_config_keeps_session_pool_free():
    dataset = build_dataset("zip_city_state", n_rows=90, seed=11)
    config = _session_config().with_overrides(pool="per-call")
    with AnmatSession(dataset_name="per-call", config=config) as session:
        session.load_table(dataset.table)
        session.run_discovery()
        assert session._worker_pool is None


def test_no_leaked_processes_after_session_context_exit():
    dataset = build_dataset("zip_city_state", n_rows=90, seed=11)
    with AnmatSession(dataset_name="leak", config=_session_config()) as session:
        session.load_table(dataset.table)
        session.run_discovery()
        pool = session._worker_pool
        processes = (
            list(pool._executor._processes.values()) if pool.started else []
        )
    assert pool.closed
    assert all(not process.is_alive() for process in processes)


def test_plan_records_pool_and_prefetch_decisions():
    config = DiscoveryConfig(
        shard_rows=8, n_workers=2, store="object", prefetch_depth=3
    )
    dataset = build_dataset("zip_city_state", n_rows=40, seed=5)
    with AnmatSession(dataset_name="decisions", config=config) as session:
        session.load_table(dataset.table)
        plan = session.plan_discovery()
    assert plan.pool == "persistent"
    assert plan.prefetch_depth == 3
    assert any("persistent" in line for line in plan.decisions)
    assert any("prefetch_depth=3" in line for line in plan.decisions)
    assert "pool=persistent" in plan.describe()
    assert "prefetch_depth=3" in plan.describe()
