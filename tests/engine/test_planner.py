"""Planner unit tests: the full routing matrix.

Every combination of (shard_rows, n_workers, strategy, upload kind,
requested executor) must resolve to a deterministic backend, with the
decisions recorded on the plan and the silent-override case warning.
"""

import warnings

import pytest

from repro.detection import DetectionStrategy
from repro.discovery import DiscoveryConfig
from repro.engine import (
    DEFAULT_PARALLEL_WORKERS,
    DEFAULT_SHARD_ROWS,
    ExecutionBackend,
    PlanWarning,
    plan_detection,
    plan_discovery,
    plan_run,
)
from repro.errors import DetectionError


def config(shard_rows=0, n_workers=0):
    return DiscoveryConfig(shard_rows=shard_rows, n_workers=n_workers)


class TestAutoRouting:
    """executor='auto': the planner routes on config and upload kind."""

    @pytest.mark.parametrize("kind", ["discovery", "detection"])
    def test_default_is_serial(self, kind):
        plan = plan_run(kind, 100, config())
        assert plan.backend == ExecutionBackend.SERIAL
        assert plan.shard_rows == 0
        assert plan.n_shards == 0
        # the only default decision is the kernel-mode resolution
        routing = [d for d in plan.decisions if not d.startswith("use_kernels")]
        assert routing == []
        assert plan.use_kernels in ("on", "off")

    @pytest.mark.parametrize("kind", ["discovery", "detection"])
    def test_n_workers_routes_parallel(self, kind):
        plan = plan_run(kind, 100, config(n_workers=4))
        assert plan.backend == ExecutionBackend.PARALLEL
        assert plan.n_workers == 4

    @pytest.mark.parametrize("kind", ["discovery", "detection"])
    def test_shard_rows_routes_sharded(self, kind):
        plan = plan_run(kind, 100, config(shard_rows=30))
        assert plan.backend == ExecutionBackend.SHARDED
        assert plan.shard_rows == 30
        assert plan.n_shards == 4  # ceil(100 / 30)

    @pytest.mark.parametrize("kind", ["discovery", "detection"])
    def test_sharded_upload_routes_sharded(self, kind):
        plan = plan_run(kind, 100, config(), sharded_upload=True, upload_shard_rows=25)
        assert plan.backend == ExecutionBackend.SHARDED
        assert plan.shard_rows == 25  # keeps the upload's partition

    def test_shard_rows_beats_n_workers_and_keeps_fanout(self):
        # both knobs: sharded backend, workers fan out the extraction
        plan = plan_run("discovery", 100, config(shard_rows=10, n_workers=3))
        assert plan.backend == ExecutionBackend.SHARDED
        assert plan.n_workers == 3

    def test_config_shard_rows_beats_upload_partition(self):
        plan = plan_run(
            "discovery", 100, config(shard_rows=40), sharded_upload=True,
            upload_shard_rows=25,
        )
        assert plan.shard_rows == 40


class TestExplicitStrategyPinsMonolithic:
    """The recorded-and-warned fallback: an explicit detection strategy
    on a sharded dataset skips shard parallelism (regression for the
    silent `strategy == AUTO` special case in the old session)."""

    @pytest.mark.parametrize(
        "strategy",
        [DetectionStrategy.SCAN, DetectionStrategy.INDEX, DetectionStrategy.BRUTEFORCE],
    )
    def test_explicit_strategy_on_sharded_config_warns(self, strategy):
        with pytest.warns(PlanWarning, match="shard parallelism is skipped"):
            plan = plan_detection(100, config(shard_rows=10), strategy=strategy)
        assert plan.backend == ExecutionBackend.SERIAL
        assert plan.strategy == strategy
        assert any("skipped" in decision for decision in plan.decisions)

    def test_explicit_strategy_on_sharded_upload_warns(self):
        with pytest.warns(PlanWarning):
            plan = plan_detection(
                100, config(), strategy="scan", sharded_upload=True,
                upload_shard_rows=25,
            )
        assert plan.backend == ExecutionBackend.SERIAL

    def test_explicit_strategy_with_workers_falls_back_to_parallel(self):
        with pytest.warns(PlanWarning):
            plan = plan_detection(
                100, config(shard_rows=10, n_workers=2), strategy="index"
            )
        assert plan.backend == ExecutionBackend.PARALLEL
        assert plan.strategy == "index"

    def test_auto_strategy_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            plan = plan_detection(100, config(shard_rows=10))
        assert plan.backend == ExecutionBackend.SHARDED

    def test_explicit_strategy_monolithic_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            plan = plan_detection(100, config(), strategy="scan")
        assert plan.backend == ExecutionBackend.SERIAL
        assert plan.strategy == "scan"

    def test_discovery_ignores_strategy(self):
        plan = plan_discovery(100, config(shard_rows=10))
        assert plan.strategy == DetectionStrategy.AUTO


class TestExplicitExecutors:
    """executor != 'auto' forces the backend (with decisions recorded)."""

    def test_serial_overrides_sharding_request(self):
        plan = plan_run("discovery", 100, config(shard_rows=10), executor="serial")
        assert plan.backend == ExecutionBackend.SERIAL
        assert any("serial executor requested" in d for d in plan.decisions)

    def test_parallel_overrides_sharding_request(self):
        plan = plan_run("discovery", 100, config(shard_rows=10), executor="parallel")
        assert plan.backend == ExecutionBackend.PARALLEL

    def test_parallel_defaults_workers(self):
        plan = plan_run("discovery", 100, config(), executor="parallel")
        assert plan.n_workers == DEFAULT_PARALLEL_WORKERS
        assert any("defaulting" in d for d in plan.decisions)

    def test_parallel_keeps_configured_workers(self):
        plan = plan_run("discovery", 100, config(n_workers=8), executor="parallel")
        assert plan.n_workers == 8

    def test_serial_zeroes_ignored_workers(self):
        # the plan must describe what actually runs: the serial backend
        # never uses workers, so the knob is zeroed with a decision
        plan = plan_run("discovery", 100, config(n_workers=4), executor="serial")
        assert plan.n_workers == 0
        assert any("is ignored" in d for d in plan.decisions)

    def test_sharded_defaults_shard_rows(self):
        plan = plan_run("discovery", 100, config(), executor="sharded")
        assert plan.backend == ExecutionBackend.SHARDED
        assert plan.shard_rows == DEFAULT_SHARD_ROWS
        assert plan.n_shards == 1

    def test_sharded_uses_upload_partition(self):
        plan = plan_run(
            "discovery", 100, config(), executor="sharded",
            sharded_upload=True, upload_shard_rows=25,
        )
        assert plan.shard_rows == 25

    def test_sharded_executor_with_explicit_strategy_still_falls_back(self):
        with pytest.warns(PlanWarning):
            plan = plan_detection(
                100, config(), strategy="bruteforce", executor="sharded"
            )
        assert plan.backend == ExecutionBackend.SERIAL
        assert plan.strategy == "bruteforce"


class TestValidationAndShape:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown plan kind"):
            plan_run("profile", 10, config())

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            plan_run("discovery", 10, config(), executor="remote")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(DetectionError, match="unknown strategy"):
            plan_detection(10, config(), strategy="quantum")

    def test_zero_row_table_plans_one_shard(self):
        plan = plan_run("discovery", 0, config(shard_rows=10))
        assert plan.n_shards == 1

    def test_describe_mentions_backend_and_decisions(self):
        plan = plan_detection(100, config(shard_rows=30))
        text = plan.describe()
        assert "backend=sharded" in text
        assert "shards=4x30" in text
        assert "execution plan (detection)" in text
        assert all(decision in text for decision in plan.decisions)

    def test_describe_monolithic_mentions_strategy(self):
        plan = plan_detection(100, config(), strategy="scan")
        assert "strategy=scan" in plan.describe()


class TestRuleMaintenanceResolution:
    """A re-check plan resolves ``config.rule_maintenance`` into the
    plan's ``rule_maintenance`` field; ordinary discovery plans stay at
    ``"none"``."""

    def test_non_recheck_plans_record_none(self):
        assert plan_discovery(100, config()).rule_maintenance == "none"
        assert (
            plan_discovery(100, config(shard_rows=10)).rule_maintenance == "none"
        )
        assert plan_detection(100, config()).rule_maintenance == "none"

    def test_seeded_sharded_recheck_is_incremental(self):
        plan = plan_discovery(
            100, config(shard_rows=10), recheck=True, maintainable=True
        )
        assert plan.rule_maintenance == "incremental"
        assert any("maintains the rule set" in d for d in plan.decisions)
        assert "rule_maintenance=incremental" in plan.describe()

    def test_unseeded_recheck_falls_back_quietly_under_auto(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", PlanWarning)
            plan = plan_discovery(
                100, config(shard_rows=10), recheck=True, maintainable=False
            )
        assert plan.rule_maintenance == "full"

    def test_monolithic_recheck_falls_back_quietly_under_auto(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", PlanWarning)
            plan = plan_discovery(100, config(), recheck=True, maintainable=True)
        assert plan.rule_maintenance == "full"

    def test_requested_incremental_warns_when_it_cannot_run(self):
        cfg = DiscoveryConfig(rule_maintenance="incremental")
        with pytest.warns(PlanWarning, match="sharded backend"):
            plan = plan_discovery(100, cfg, recheck=True, maintainable=True)
        assert plan.rule_maintenance == "full"
        cfg = DiscoveryConfig(shard_rows=10, rule_maintenance="incremental")
        with pytest.warns(PlanWarning, match="baseline"):
            plan = plan_discovery(100, cfg, recheck=True, maintainable=False)
        assert plan.rule_maintenance == "full"

    def test_requested_full_always_wins(self):
        cfg = DiscoveryConfig(shard_rows=10, rule_maintenance="full")
        plan = plan_discovery(100, cfg, recheck=True, maintainable=True)
        assert plan.rule_maintenance == "full"
        assert any("re-discovers" in d for d in plan.decisions)

    def test_describe_omits_none(self):
        assert "rule_maintenance" not in plan_discovery(100, config()).describe()

    def test_config_validates_the_knob(self):
        from repro.errors import DiscoveryError

        with pytest.raises(DiscoveryError, match="rule_maintenance"):
            DiscoveryConfig(rule_maintenance="sometimes")


class TestObjectClientRouting:
    """plan.object_client: which client serves an object-store run."""

    def test_http_url_routes_the_http_client(self):
        cfg = DiscoveryConfig(
            shard_rows=10, store="object", object_url="http://127.0.0.1:8080"
        )
        plan = plan_run("discovery", 100, cfg)
        assert plan.object_client == "http"
        assert "store=object[http]" in plan.describe()
        assert any("remote HTTP client" in d for d in plan.decisions)

    def test_object_store_without_url_routes_the_local_client(self):
        cfg = DiscoveryConfig(shard_rows=10, store="object")
        plan = plan_run("discovery", 100, cfg)
        assert plan.object_client == "local"
        assert "store=object[local]" in plan.describe()
        assert any("local filesystem client" in d for d in plan.decisions)

    def test_other_stores_have_no_object_client(self):
        for store in ("memory", "spill"):
            plan = plan_run("discovery", 100, DiscoveryConfig(shard_rows=10, store=store))
            assert plan.object_client == "none"
            assert "[" not in plan.describe().split("store=")[1].split()[0]

    def test_monolithic_backend_has_no_object_client(self):
        # the url is only consulted when shards actually exist
        cfg = DiscoveryConfig(store="object", object_url="http://127.0.0.1:8080")
        plan = plan_run("discovery", 100, cfg, executor="serial")
        assert plan.object_client == "none"

    def test_config_validates_the_url(self):
        from repro.errors import DiscoveryError

        with pytest.raises(DiscoveryError, match="object_url"):
            DiscoveryConfig(store="object", object_url="ftp://host/x")
