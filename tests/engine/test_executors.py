"""Differential tests: executor choice must not change results.

The PR-4 generator matrix runs through the engine API under every
backend — serial, parallel, and sharded (in-memory *and* spill-to-disk
shard store) — and each backend must produce the identical rule set and
canonically equal violations.  This is the engine's contract: the
planner may route a run anywhere without changing its meaning.
"""

from __future__ import annotations

import pytest

from repro.datagen import build_dataset
from repro.datagen.corruption import CorruptionSpec, ErrorInjector
from repro.detection import DetectionStrategy
from repro.discovery import DiscoveryConfig
from repro.engine import (
    DataSource,
    ExecutionBackend,
    SpillToDiskShardStore,
    build_executor,
    plan_detection,
    plan_discovery,
)
from repro.sharding import ShardedTable

#: the PR-4 differential matrix (generator, rows, extra corruption)
GENERATORS = [
    ("zip_city_state", 90, [CorruptionSpec("city", 0.05, kind="swap")]),
    ("phone_state", 80, [CorruptionSpec("state", 0.06, kind="case")]),
    ("fullname_gender", 80, [CorruptionSpec("gender", 0.08, kind="swap")]),
    ("employee_ids", 70, [CorruptionSpec("employee_id", 0.05, kind="typo")]),
]

SEEDS = [3, 58]

BASE = dict(min_coverage=0.4, allowed_violation_ratio=0.2)

#: requested-executor → config that routes there (workers kept at 2 so
#: the process pools stay cheap; the pool degrades to serial in
#: fork-less sandboxes, which exercises the same code path)
EXECUTOR_CONFIGS = {
    "serial": DiscoveryConfig(**BASE),
    "parallel": DiscoveryConfig(**BASE, n_workers=2),
    "sharded": DiscoveryConfig(**BASE, shard_rows=13),
    "sharded-workers": DiscoveryConfig(**BASE, shard_rows=13, n_workers=2),
}


def dirty_table(name, n_rows, specs, seed):
    dataset = build_dataset(name, n_rows=n_rows, seed=seed)
    dirty, _cells = ErrorInjector(seed=seed + 1).corrupt(dataset.table, specs)
    return dirty


def run_engine(table, config, executor="auto", source=None):
    """One full discover→detect round through the engine API."""
    source = source or DataSource(table)
    d_plan = plan_discovery(
        table.n_rows, config, executor=executor,
        sharded_upload=source.is_sharded_upload,
        upload_shard_rows=source.upload_shard_rows,
    )
    discovery = build_executor(d_plan).run_discovery(d_plan, source)
    v_plan = plan_detection(
        table.n_rows, config, executor=executor,
        sharded_upload=source.is_sharded_upload,
        upload_shard_rows=source.upload_shard_rows,
    )
    report = build_executor(v_plan).run_detection(v_plan, source, discovery.pfds)
    rules = [pfd.describe() for pfd in discovery.pfds]
    return d_plan, v_plan, rules, report.canonical_violations()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name,n_rows,specs", GENERATORS, ids=lambda v: str(v))
class TestExecutorInvariance:
    def test_all_backends_agree(self, name, n_rows, specs, seed):
        table = dirty_table(name, n_rows, specs, seed)
        results = {
            label: run_engine(table, config)
            for label, config in EXECUTOR_CONFIGS.items()
        }
        _, _, rules, violations = results["serial"]
        assert results["serial"][0].backend == ExecutionBackend.SERIAL
        assert results["parallel"][0].backend == ExecutionBackend.PARALLEL
        assert results["sharded"][0].backend == ExecutionBackend.SHARDED
        for label, (d_plan, _v_plan, got_rules, got_violations) in results.items():
            assert got_rules == rules, f"rule set diverged under {label}"
            assert got_violations == violations, f"violations diverged under {label}"

    def test_spill_to_disk_store_agrees(self, name, n_rows, specs, seed, tmp_path):
        table = dirty_table(name, n_rows, specs, seed)
        _, _, rules, violations = run_engine(table, EXECUTOR_CONFIGS["serial"])
        store = SpillToDiskShardStore(tmp_path / "spill")
        sharded = ShardedTable.from_table(table, 13, store=store)
        source = DataSource(sharded.to_table(), sharded=sharded)
        d_plan, v_plan, got_rules, got_violations = run_engine(
            table, DiscoveryConfig(**BASE), source=source
        )
        assert d_plan.backend == ExecutionBackend.SHARDED
        assert v_plan.backend == ExecutionBackend.SHARDED
        assert got_rules == rules
        assert got_violations == violations

    def test_forced_executor_matches_auto(self, name, n_rows, specs, seed):
        """--executor style forcing: every requested backend agrees."""
        table = dirty_table(name, n_rows, specs, seed)
        base = DiscoveryConfig(**BASE)
        _, _, rules, violations = run_engine(table, base)
        for requested in ("serial", "parallel", "sharded"):
            d_plan, _v, got_rules, got_violations = run_engine(
                table, base, executor=requested
            )
            assert d_plan.backend == requested
            assert got_rules == rules, f"rule set diverged under --executor {requested}"
            assert got_violations == violations, (
                f"violations diverged under --executor {requested}"
            )


class TestParallelDetection:
    """The per-rule detection fan-out keeps monolithic semantics."""

    @pytest.mark.parametrize(
        "strategy",
        [DetectionStrategy.SCAN, DetectionStrategy.INDEX, DetectionStrategy.BRUTEFORCE],
    )
    def test_strategies_survive_fanout(self, strategy):
        from repro.detection import ErrorDetector
        from repro.discovery import PfdDiscoverer
        from repro.engine import detect_all_parallel

        table = dirty_table("zip_city_state", 90, [], 7)
        pfds = PfdDiscoverer(DiscoveryConfig(**BASE)).discover(table)
        assert pfds
        serial = ErrorDetector(table).detect_all(pfds, strategy=strategy)
        parallel = detect_all_parallel(table, list(pfds), strategy, n_workers=2)
        assert parallel.canonical_violations() == serial.canonical_violations()
        assert parallel.strategy == strategy
        assert parallel.n_rows == serial.n_rows

    def test_single_rule_runs_inline(self):
        from repro.discovery import PfdDiscoverer
        from repro.engine import detect_all_parallel

        table = dirty_table("zip_city_state", 60, [], 3)
        pfds = PfdDiscoverer(DiscoveryConfig(**BASE)).discover(table)[:1]
        report = detect_all_parallel(table, pfds, DetectionStrategy.AUTO, n_workers=4)
        assert report.strategy == DetectionStrategy.AUTO


class TestDataSource:
    def test_sharded_view_reused_until_edit(self):
        table = dirty_table("zip_city_state", 60, [], 3)
        source = DataSource(table)
        first = source.sharded_view(10)
        assert source.sharded_view(10) is first
        table.set_cell(0, table.column_names()[0], "X")
        rebuilt = source.sharded_view(10)
        assert rebuilt is not first
        assert rebuilt.to_table().cell(0, table.column_names()[0]) == "X"

    def test_forced_sharded_run_does_not_flip_upload_kind(self):
        # regression: building a sharded view for a one-off forced run
        # must not make later auto-planned runs believe the upload was
        # sharded
        table = dirty_table("zip_city_state", 60, [], 3)
        source = DataSource(table)
        assert not source.is_sharded_upload
        source.sharded_view(10)  # e.g. executor="sharded" for one run
        assert not source.is_sharded_upload
        assert source.upload_shard_rows == 0
        plan = plan_detection(
            table.n_rows, DiscoveryConfig(**BASE),
            sharded_upload=source.is_sharded_upload,
            upload_shard_rows=source.upload_shard_rows,
        )
        assert plan.backend == ExecutionBackend.SERIAL

    def test_view_recut_when_requested_size_differs(self):
        # regression: config.shard_rows must win over a fresh cached
        # upload partition, so the executed shards match the plan
        table = dirty_table("zip_city_state", 60, [], 3)
        upload = ShardedTable.from_table(table, 25)
        source = DataSource(upload.to_table(), sharded=upload)
        view = source.sharded_view(10)
        assert view is not upload
        assert max(view.shard_row_counts()) == 10
        # and asking for the upload's own size reuses it (cache kept)
        fresh = DataSource(upload.to_table(), sharded=upload)
        assert fresh.sharded_view(25) is upload

    def test_upload_partition_kept_without_knob(self):
        table = dirty_table("zip_city_state", 60, [], 3)
        sharded = ShardedTable.from_table(table, 25)
        source = DataSource(sharded.to_table(), sharded=sharded)
        assert source.is_sharded_upload
        assert source.upload_shard_rows == 25
        # an edit forces a rebuild; without a knob the upload's size sticks
        source.table.set_cell(0, table.column_names()[0], "X")
        rebuilt = source.sharded_view(0)
        assert max(rebuilt.shard_row_counts()) == 25
