"""Unit tests for the :class:`DataSource` duality — eager monolithic
sources vs the never-materialized shard-store sources of the out-of-core
session path."""

from repro.dataset import Table
from repro.dataset.profiling import profile_table
from repro.engine import DataSource
from repro.sharding import ShardOverlay, ShardedTable, SpillToDiskShardStore


def small_table(n_rows: int = 10) -> Table:
    return Table(
        ["zip", "city"],
        [
            [f"{90000 + i}" for i in range(n_rows)],
            [f"city{i % 3}" for i in range(n_rows)],
        ],
    )


def lazy_source(n_rows: int = 10, shard_rows: int = 4) -> DataSource:
    sharded = ShardedTable.from_table(small_table(n_rows), shard_rows)
    return DataSource.from_sharded(sharded)


class TestLazySource:
    def test_from_sharded_is_never_materialized(self):
        source = lazy_source()
        assert source.materialization == "never"
        assert isinstance(source.view, ShardOverlay)
        assert source.editable is source.view
        assert source.is_sharded_upload
        assert source.upload_shard_rows == 4

    def test_table_materializes_from_overlay_and_caches_per_version(self):
        source = lazy_source()
        first = source.table
        assert first.column("zip") == small_table().column("zip")
        # same overlay version → the same materialized table object
        assert source.table is first
        source.view.set_cell(0, "city", "edited")
        rebuilt = source.table
        assert rebuilt is not first
        assert rebuilt.cell(0, "city") == "edited"

    def test_untouched_overlay_returns_the_base_shards(self):
        sharded = ShardedTable.from_table(small_table(), 4)
        source = DataSource.from_sharded(sharded)
        assert source.sharded_view(0) is sharded
        assert source.sharded_view(4) is sharded

    def test_touched_overlay_seals_a_patched_view_cached_by_version(self):
        source = lazy_source()
        source.view.set_cell(1, "city", "patched")
        view = source.sharded_view(0)
        assert view.cell(1, "city") == "patched"
        assert source.sharded_view(0) is view
        source.view.set_cell(2, "city", "again")
        assert source.sharded_view(0) is not view

    def test_explicit_shard_rows_repartitions_by_streaming(self):
        source = lazy_source(n_rows=10, shard_rows=4)
        view = source.sharded_view(3)
        assert view.shard_row_counts() == [3, 3, 3, 1]
        assert view.to_table().column("zip") == source.table.column("zip")
        # the recut view is cached per (version, shard_rows) too
        assert source.sharded_view(3) is view

    def test_repartition_covers_appends_and_deletes(self):
        source = lazy_source(n_rows=6, shard_rows=3)
        source.view.append_row(["99999", "newtown"])
        source.view.delete_row(0)
        view = source.sharded_view(2)
        assert view.n_rows == 6
        assert view.to_table().column("city") == source.table.column("city")

    def test_profile_streams_and_matches_the_materialized_profile(self):
        source = lazy_source()
        assert source.profile() == profile_table(source.table)

    def test_close_releases_the_spill_store(self):
        store = SpillToDiskShardStore()
        sharded = ShardedTable.from_table(small_table(), 4, store=store)
        source = DataSource.from_sharded(sharded)
        source.sharded_view(3)
        spill_dir = store.directory
        assert spill_dir.exists()
        source.close()
        assert not spill_dir.exists()
        # idempotent
        source.close()


class TestEagerSource:
    def test_view_is_the_monolithic_table(self):
        table = small_table()
        source = DataSource(table)
        assert source.materialization == "eager"
        assert source.view is table
        assert not source.is_sharded_upload
        assert source.upload_shard_rows == 0

    def test_sharded_view_recut_on_edit_or_size_change(self):
        table = small_table()
        source = DataSource(table)
        first = source.sharded_view(4)
        assert first.shard_row_counts() == [4, 4, 2]
        assert source.sharded_view(4) is first
        recut = source.sharded_view(5)
        assert recut.shard_row_counts() == [5, 5]
        table.set_cell(0, "city", "edited")
        assert source.sharded_view(5) is not recut

    def test_profile_matches_table_profile(self):
        table = small_table()
        assert DataSource(table).profile() == profile_table(table)
