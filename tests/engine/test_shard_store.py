"""Unit tests for the pluggable shard stores."""

import pytest

from repro.dataset import Table
from repro.errors import TableError
from repro.sharding import (
    InMemoryShardStore,
    LocalObjectClient,
    ObjectShardStore,
    ObjectStoreError,
    STORE_KINDS,
    ShardedTable,
    SpillToDiskShardStore,
    make_shard_store,
)


def make_shard(values):
    return Table.from_rows(["code", "label"], values)


SHARD_A = [["10", "x"], ["20", "y"]]
SHARD_B = [["30", "z"]]


@pytest.fixture(params=["memory", "disk", "object"])
def store(request, tmp_path):
    if request.param == "memory":
        return InMemoryShardStore()
    if request.param == "disk":
        return SpillToDiskShardStore(tmp_path / "spill")
    return ObjectShardStore(root=tmp_path / "objects")


class TestStoreContract:
    def test_append_get_roundtrip(self, store):
        store.append(make_shard(SHARD_A))
        store.append(make_shard(SHARD_B))
        assert store.n_shards == 2
        assert len(store) == 2
        assert store.shard_row_counts() == [2, 1]
        assert store.get(0).column("code") == ["10", "20"]
        assert store.get(1).row(0) == ("30", "z")
        assert store.column_names() == ["code", "label"]

    def test_schema_mismatch_rejected(self, store):
        store.append(make_shard(SHARD_A))
        with pytest.raises(TableError, match="shard 1 has columns"):
            store.append(Table.from_rows(["code", "other"], SHARD_B))

    def test_empty_store_has_no_schema(self, store):
        with pytest.raises(TableError, match="empty"):
            store.schema

    def test_versions_are_stable(self, store):
        store.append(make_shard(SHARD_A))
        assert store.versions() == store.versions()

    def test_sealed_into_sharded_table(self, store):
        store.append(make_shard(SHARD_A))
        store.append(make_shard(SHARD_B))
        sharded = ShardedTable(store)
        assert sharded.n_rows == 3
        assert sharded.column_concat("code") == ["10", "20", "30"]
        assert sharded.cell(2, "label") == "z"
        assert sharded.store is store


class TestSpillToDisk:
    def test_round_trips_awkward_values(self, tmp_path):
        store = SpillToDiskShardStore(tmp_path / "spill")
        awkward = [
            ['has,comma', 'has "quote"'],
            ["multi\nline", ""],
            ["  padded  ", "naïve·unicode"],
        ]
        store.append(make_shard(awkward))
        assert [list(row) for row in store.get(0).iter_rows()] == awkward

    def test_lru_keeps_memory_bounded(self, tmp_path):
        store = SpillToDiskShardStore(tmp_path / "spill", cache_shards=1)
        store.append(make_shard(SHARD_A))
        store.append(make_shard(SHARD_B))
        first = store.get(0)
        assert store.get(0) is first  # cached
        store.get(1)  # evicts shard 0 from the one-slot LRU
        assert store.get(0) is not first  # re-parsed from disk
        assert store.get(0).column("code") == first.column("code")

    def test_files_live_in_directory(self, tmp_path):
        directory = tmp_path / "spill"
        store = SpillToDiskShardStore(directory)
        store.append(make_shard(SHARD_A))
        assert sorted(p.name for p in directory.iterdir()) == ["shard_000000.csv"]

    def test_private_tempdir_removed_on_close(self):
        store = SpillToDiskShardStore()
        store.append(make_shard(SHARD_A))
        directory = store.directory
        assert directory.exists()
        store.close()
        assert not directory.exists()

    def test_zero_row_shard_roundtrip(self, tmp_path):
        store = SpillToDiskShardStore(tmp_path / "spill")
        store.append(Table.empty(["code", "label"]))
        assert store.get(0).n_rows == 0
        assert store.shard_row_counts() == [0]

    def test_corrupted_spill_file_rejected_with_line(self, tmp_path):
        store = SpillToDiskShardStore(tmp_path / "spill", cache_shards=1)
        store.append(make_shard(SHARD_A))
        path = tmp_path / "spill" / "shard_000000.csv"
        path.write_text("10,x\n20,y,EXTRA\n")
        with pytest.raises(TableError, match="line 2 has 3 fields"):
            store.get(0)

    def test_bad_cache_size_rejected(self, tmp_path):
        with pytest.raises(TableError, match="cache_shards"):
            SpillToDiskShardStore(tmp_path, cache_shards=0)

    def test_corrupted_spill_row_count_mismatch(self, tmp_path):
        # the other corruption branch: well-formed CSV, wrong row count
        store = SpillToDiskShardStore(tmp_path / "spill", cache_shards=1)
        store.append(make_shard(SHARD_A))
        path = tmp_path / "spill" / "shard_000000.csv"
        path.write_text("10,x\n")
        with pytest.raises(TableError, match="read back 1 rows, expected 2"):
            store.get(0)

    def test_lru_accounting_under_cross_shard_access(self, tmp_path):
        # repeated alternating access across more shards than LRU slots:
        # the resident set never exceeds cache_shards, reloads produce
        # fresh-but-equal tables, and a cache hit refreshes recency
        store = SpillToDiskShardStore(tmp_path / "spill", cache_shards=2)
        shards = [make_shard([[str(10 * i), "v"]]) for i in range(4)]
        for shard in shards:
            store.append(shard)
        for round_trip in range(3):
            for index in (0, 1, 2, 3, 1, 0):
                loaded = store.get(index)
                assert loaded.column("code") == [str(10 * index)]
                assert len(store._loaded) <= 2
        # recency: touching 2 then 3 leaves exactly {2, 3} resident
        store.get(2)
        store.get(3)
        assert sorted(store._loaded) == [2, 3]
        # a hit moves the shard to most-recent, protecting it from the
        # next eviction
        second = store.get(2)
        store.get(0)  # evicts 3, not the freshly touched 2
        assert store.get(2) is second
        assert sorted(store._loaded) == [0, 2]


class FlakyClient(LocalObjectClient):
    """A client whose first ``fail_reads`` get() / ``fail_puts`` put()
    calls raise."""

    def __init__(self, root, fail_reads=0, fail_puts=0):
        super().__init__(root)
        self.fail_reads = fail_reads
        self.fail_puts = fail_puts

    def get(self, key):
        if self.fail_reads > 0:
            self.fail_reads -= 1
            raise ObjectStoreError(f"transient outage reading {key!r}")
        return super().get(key)

    def put(self, key, data):
        if self.fail_puts > 0:
            self.fail_puts -= 1
            raise ObjectStoreError(f"transient outage writing {key!r}", transient=True)
        super().put(key, data)


class TestObjectStore:
    def test_round_trips_awkward_values(self, tmp_path):
        store = ObjectShardStore(root=tmp_path / "objects")
        awkward = [
            ['has,comma', 'has "quote"'],
            ["multi\nline", ""],
            ["  padded  ", "naïve·unicode"],
        ]
        store.append(make_shard(awkward))
        assert [list(row) for row in store.get(0).iter_rows()] == awkward

    def test_objects_live_under_prefix(self, tmp_path):
        store = ObjectShardStore(root=tmp_path / "objects", prefix="ds1")
        store.append(make_shard(SHARD_A))
        store.append(make_shard(SHARD_B))
        assert store.client.list("ds1/") == [
            "ds1/shard_000000.csv",
            "ds1/shard_000001.csv",
        ]

    def test_transient_read_failure_is_retried(self, tmp_path):
        client = FlakyClient(tmp_path / "objects", fail_reads=0)
        store = ObjectShardStore(client=client)
        store.append(make_shard(SHARD_A))
        client.fail_reads = 2  # fewer than max_read_attempts=3
        assert store.get(0).column("code") == ["10", "20"]
        assert store.retried_reads == 2

    def test_persistent_read_failure_surfaces(self, tmp_path):
        client = FlakyClient(tmp_path / "objects", fail_reads=99)
        store = ObjectShardStore(client=client, max_read_attempts=3)
        store.append(make_shard(SHARD_A))
        with pytest.raises(TableError, match="unreadable after 3 attempts"):
            store.get(0)
        assert store.retried_reads == 2

    def test_transient_put_failure_is_retried(self, tmp_path):
        # regression: puts used to go out un-retried, so one transient
        # failure lost the shard instead of healing like reads do
        client = FlakyClient(tmp_path / "objects", fail_puts=2)
        store = ObjectShardStore(client=client)
        store.append(make_shard(SHARD_A))
        assert store.retried_puts == 2
        assert store.n_shards == 1
        assert store.get(0).column("code") == ["10", "20"]

    def test_persistent_put_failure_surfaces(self, tmp_path):
        client = FlakyClient(tmp_path / "objects", fail_puts=99)
        store = ObjectShardStore(client=client, max_read_attempts=3)
        with pytest.raises(TableError, match="upload failed after 3 attempts"):
            store.append(make_shard(SHARD_A))
        assert store.n_shards == 0  # the failed shard was never recorded

    def test_checksum_mismatch_rejected(self, tmp_path):
        store = ObjectShardStore(root=tmp_path / "objects")
        store.append(make_shard(SHARD_A))
        # flip bytes behind the store's back: same shape, wrong content
        store.client.put("shards/shard_000000.csv", b"99,x\r\n20,y\r\n")
        with pytest.raises(TableError, match="failed its checksum") as excinfo:
            store.get(0)
        # regression: the error must carry enough context to diagnose —
        # which object, how hard we tried, and both digests
        message = str(excinfo.value)
        assert "shards/shard_000000.csv" in message
        assert "attempts" in message
        assert "expected sha256" in message and "got" in message

    def test_deleted_object_surfaces_client_error(self, tmp_path):
        store = ObjectShardStore(root=tmp_path / "objects")
        store.append(make_shard(SHARD_A))
        store.client.delete("shards/shard_000000.csv")
        with pytest.raises(TableError, match="could not be read"):
            store.get(0)

    def test_corrupted_object_ragged_line(self, tmp_path):
        store = ObjectShardStore(root=tmp_path / "objects")
        store.append(make_shard(SHARD_A))
        data = b"10,x\r\n20,y,EXTRA\r\n"
        store.client.put("shards/shard_000000.csv", data)
        store._meta[0] = store._meta[0][:3] + (
            __import__("hashlib").sha256(data).hexdigest(),
        )
        with pytest.raises(TableError, match="line 2 has 3 fields"):
            store.get(0)

    def test_corrupted_object_row_count_mismatch(self, tmp_path):
        store = ObjectShardStore(root=tmp_path / "objects")
        store.append(make_shard(SHARD_A))
        data = b"10,x\r\n"
        store.client.put("shards/shard_000000.csv", data)
        store._meta[0] = store._meta[0][:3] + (
            __import__("hashlib").sha256(data).hexdigest(),
        )
        with pytest.raises(TableError, match="read back 1 rows, expected 2"):
            store.get(0)

    def test_lru_keeps_memory_bounded(self, tmp_path):
        store = ObjectShardStore(root=tmp_path / "objects", cache_shards=1)
        store.append(make_shard(SHARD_A))
        store.append(make_shard(SHARD_B))
        first = store.get(0)
        assert store.get(0) is first  # cached
        store.get(1)  # evicts shard 0 from the one-slot LRU
        assert store.get(0) is not first
        assert store.get(0).column("code") == first.column("code")

    def test_invalid_keys_rejected(self, tmp_path):
        client = LocalObjectClient(tmp_path / "objects")
        for key in ("", "/abs", "../escape", "a/../b", ".hidden"):
            with pytest.raises(ObjectStoreError, match="invalid object key"):
                client.get(key)

    def test_owned_tempdir_removed_on_close(self):
        store = ObjectShardStore()
        store.append(make_shard(SHARD_A))
        root = store.client.root
        assert root.exists()
        store.close()
        assert not root.exists()

    def test_shared_client_survives_close(self, tmp_path):
        client = LocalObjectClient(tmp_path / "objects")
        store = ObjectShardStore(client=client)
        store.append(make_shard(SHARD_A))
        store.close()
        # the caller owns the client; its objects are untouched
        assert client.list() == ["shards/shard_000000.csv"]

    def test_bad_parameters_rejected(self, tmp_path):
        with pytest.raises(TableError, match="cache_shards"):
            ObjectShardStore(root=tmp_path, cache_shards=0)
        with pytest.raises(TableError, match="max_read_attempts"):
            ObjectShardStore(root=tmp_path, max_read_attempts=0)


class TestMakeShardStore:
    def test_kinds_cover_the_factory(self, tmp_path):
        assert STORE_KINDS == ("memory", "spill", "object")
        assert isinstance(make_shard_store("memory"), InMemoryShardStore)
        spill = make_shard_store("spill", tmp_path / "spill")
        assert isinstance(spill, SpillToDiskShardStore)
        assert spill.directory == tmp_path / "spill"
        obj = make_shard_store("object", tmp_path / "objects")
        assert isinstance(obj, ObjectShardStore)
        assert obj.client.root == tmp_path / "objects"

    def test_unknown_kind_rejected(self):
        with pytest.raises(TableError, match="unknown shard store kind"):
            make_shard_store("cloud")


class TestStreamingIngest:
    def test_from_chunks_feeds_store_incrementally(self, tmp_path):
        store = SpillToDiskShardStore(tmp_path / "spill", cache_shards=1)
        chunks = (make_shard([[str(i), "v"]]) for i in range(5))
        sharded = ShardedTable.from_chunks(chunks, store=store)
        assert sharded.n_shards == 5
        assert sharded.column_concat("code") == [str(i) for i in range(5)]

    def test_from_chunks_rejects_prepopulated_store(self, tmp_path):
        # regression: re-uploading into a used store would silently
        # concatenate the two datasets
        store = SpillToDiskShardStore(tmp_path / "spill")
        ShardedTable.from_chunks([make_shard(SHARD_A)], store=store)
        with pytest.raises(TableError, match="empty store"):
            ShardedTable.from_chunks([make_shard(SHARD_B)], store=store)
        # adopting existing shards stays possible via the constructor
        assert ShardedTable(store).n_rows == 2

    def test_read_csv_sharded_into_spill_store(self, tmp_path):
        from repro.dataset.csvio import read_csv_sharded

        path = tmp_path / "data.csv"
        path.write_text("code,label\n10,x\n20,y\n30,z\n")
        store = SpillToDiskShardStore(tmp_path / "spill")
        sharded = read_csv_sharded(path, 2, store=store)
        assert sharded.n_shards == 2
        assert sharded.column_concat("code") == ["10", "20", "30"]
        assert store.n_shards == 2
