"""Unit tests for the pluggable shard stores."""

import pytest

from repro.dataset import Table
from repro.errors import TableError
from repro.sharding import (
    InMemoryShardStore,
    ShardedTable,
    SpillToDiskShardStore,
)


def make_shard(values):
    return Table.from_rows(["code", "label"], values)


SHARD_A = [["10", "x"], ["20", "y"]]
SHARD_B = [["30", "z"]]


@pytest.fixture(params=["memory", "disk"])
def store(request, tmp_path):
    if request.param == "memory":
        return InMemoryShardStore()
    return SpillToDiskShardStore(tmp_path / "spill")


class TestStoreContract:
    def test_append_get_roundtrip(self, store):
        store.append(make_shard(SHARD_A))
        store.append(make_shard(SHARD_B))
        assert store.n_shards == 2
        assert len(store) == 2
        assert store.shard_row_counts() == [2, 1]
        assert store.get(0).column("code") == ["10", "20"]
        assert store.get(1).row(0) == ("30", "z")
        assert store.column_names() == ["code", "label"]

    def test_schema_mismatch_rejected(self, store):
        store.append(make_shard(SHARD_A))
        with pytest.raises(TableError, match="shard 1 has columns"):
            store.append(Table.from_rows(["code", "other"], SHARD_B))

    def test_empty_store_has_no_schema(self, store):
        with pytest.raises(TableError, match="empty"):
            store.schema

    def test_versions_are_stable(self, store):
        store.append(make_shard(SHARD_A))
        assert store.versions() == store.versions()

    def test_sealed_into_sharded_table(self, store):
        store.append(make_shard(SHARD_A))
        store.append(make_shard(SHARD_B))
        sharded = ShardedTable(store)
        assert sharded.n_rows == 3
        assert sharded.column_concat("code") == ["10", "20", "30"]
        assert sharded.cell(2, "label") == "z"
        assert sharded.store is store


class TestSpillToDisk:
    def test_round_trips_awkward_values(self, tmp_path):
        store = SpillToDiskShardStore(tmp_path / "spill")
        awkward = [
            ['has,comma', 'has "quote"'],
            ["multi\nline", ""],
            ["  padded  ", "naïve·unicode"],
        ]
        store.append(make_shard(awkward))
        assert [list(row) for row in store.get(0).iter_rows()] == awkward

    def test_lru_keeps_memory_bounded(self, tmp_path):
        store = SpillToDiskShardStore(tmp_path / "spill", cache_shards=1)
        store.append(make_shard(SHARD_A))
        store.append(make_shard(SHARD_B))
        first = store.get(0)
        assert store.get(0) is first  # cached
        store.get(1)  # evicts shard 0 from the one-slot LRU
        assert store.get(0) is not first  # re-parsed from disk
        assert store.get(0).column("code") == first.column("code")

    def test_files_live_in_directory(self, tmp_path):
        directory = tmp_path / "spill"
        store = SpillToDiskShardStore(directory)
        store.append(make_shard(SHARD_A))
        assert sorted(p.name for p in directory.iterdir()) == ["shard_000000.csv"]

    def test_private_tempdir_removed_on_close(self):
        store = SpillToDiskShardStore()
        store.append(make_shard(SHARD_A))
        directory = store.directory
        assert directory.exists()
        store.close()
        assert not directory.exists()

    def test_zero_row_shard_roundtrip(self, tmp_path):
        store = SpillToDiskShardStore(tmp_path / "spill")
        store.append(Table.empty(["code", "label"]))
        assert store.get(0).n_rows == 0
        assert store.shard_row_counts() == [0]

    def test_corrupted_spill_file_rejected_with_line(self, tmp_path):
        store = SpillToDiskShardStore(tmp_path / "spill", cache_shards=1)
        store.append(make_shard(SHARD_A))
        path = tmp_path / "spill" / "shard_000000.csv"
        path.write_text("10,x\n20,y,EXTRA\n")
        with pytest.raises(TableError, match="line 2 has 3 fields"):
            store.get(0)

    def test_bad_cache_size_rejected(self, tmp_path):
        with pytest.raises(TableError, match="cache_shards"):
            SpillToDiskShardStore(tmp_path, cache_shards=0)


class TestStreamingIngest:
    def test_from_chunks_feeds_store_incrementally(self, tmp_path):
        store = SpillToDiskShardStore(tmp_path / "spill", cache_shards=1)
        chunks = (make_shard([[str(i), "v"]]) for i in range(5))
        sharded = ShardedTable.from_chunks(chunks, store=store)
        assert sharded.n_shards == 5
        assert sharded.column_concat("code") == [str(i) for i in range(5)]

    def test_from_chunks_rejects_prepopulated_store(self, tmp_path):
        # regression: re-uploading into a used store would silently
        # concatenate the two datasets
        store = SpillToDiskShardStore(tmp_path / "spill")
        ShardedTable.from_chunks([make_shard(SHARD_A)], store=store)
        with pytest.raises(TableError, match="empty store"):
            ShardedTable.from_chunks([make_shard(SHARD_B)], store=store)
        # adopting existing shards stays possible via the constructor
        assert ShardedTable(store).n_rows == 2

    def test_read_csv_sharded_into_spill_store(self, tmp_path):
        from repro.dataset.csvio import read_csv_sharded

        path = tmp_path / "data.csv"
        path.write_text("code,label\n10,x\n20,y\n30,z\n")
        store = SpillToDiskShardStore(tmp_path / "spill")
        sharded = read_csv_sharded(path, 2, store=store)
        assert sharded.n_shards == 2
        assert sharded.column_concat("code") == ["10", "20", "30"]
        assert store.n_shards == 2
