"""Tests for constrained patterns (``Q``, ``s(Q)``, ``≡_Q``)."""

import pytest

from repro.constrained.constrained_pattern import (
    ConstrainedPattern,
    Segment,
    constrained_first_token,
    constrained_prefix,
    constrained_word_sequence,
)
from repro.errors import ConstraintError
from repro.patterns import Pattern, parse_pattern


class TestConstruction:
    def test_requires_at_least_one_segment(self):
        with pytest.raises(ConstraintError):
            ConstrainedPattern([])

    def test_requires_a_constrained_segment(self):
        with pytest.raises(ConstraintError):
            ConstrainedPattern([Segment(parse_pattern("\\D{5}"), False)])

    def test_whole_value(self):
        pattern = ConstrainedPattern.whole_value(parse_pattern("\\D{5}"))
        assert pattern.matches("90001")
        assert pattern.project("90001") == ("90001",)

    def test_parse_angle_bracket_syntax(self):
        pattern = ConstrainedPattern.parse("⟨\\D{3}⟩\\D{2}")
        assert len(pattern.segments) == 2
        assert pattern.segments[0].constrained
        assert not pattern.segments[1].constrained

    def test_parse_ascii_brackets(self):
        pattern = ConstrainedPattern.parse("<\\D{3}>\\D{2}")
        assert pattern.project("90001") == ("900",)

    def test_parse_unbalanced_brackets(self):
        with pytest.raises(ConstraintError):
            ConstrainedPattern.parse("⟨\\D{3}\\D{2}")
        with pytest.raises(ConstraintError):
            ConstrainedPattern.parse("\\D{3}⟩\\D{2}")
        with pytest.raises(ConstraintError):
            ConstrainedPattern.parse("⟨⟨\\D{3}⟩⟩")

    def test_round_trip_via_to_text(self):
        original = ConstrainedPattern.parse("⟨\\D{3}⟩\\D{2}")
        assert ConstrainedPattern.parse(original.to_text()) == original

    def test_equality_and_hash(self):
        left = ConstrainedPattern.parse("⟨\\D{3}⟩\\D{2}")
        right = ConstrainedPattern.parse("⟨\\D{3}⟩\\D{2}")
        assert left == right
        assert hash(left) == hash(right)


class TestPaperLambda5:
    """λ5: the first 3 digits of a 5-digit zip code determine the city."""

    @pytest.fixture
    def q(self):
        return constrained_prefix(3, parse_pattern("\\D{2}"), head=parse_pattern("\\D{3}"))

    def test_embedded_pattern_matches_zip_codes(self, q):
        assert q.matches("90001")
        assert not q.matches("9000")
        assert not q.matches("9000x")

    def test_projection_is_the_prefix(self, q):
        assert q.project("90001") == ("900",)
        assert q.project("60601") == ("606",)
        assert q.project("banana") is None

    def test_equivalence_groups_same_prefix(self, q):
        assert q.equivalent("90001", "90004")
        assert not q.equivalent("90001", "60601")
        assert not q.equivalent("90001", "banana")

    def test_to_text_shows_constrained_segment(self, q):
        assert q.to_text() == "⟨\\D{3}⟩\\D{2}"

    def test_blocking_key_equals_projection(self, q):
        assert q.blocking_key("90001") == q.project("90001")


class TestPaperLambda4:
    """λ4: one's first name determines one's gender."""

    @pytest.fixture
    def q(self):
        return constrained_first_token()

    def test_embedded_pattern(self, q):
        assert q.matches("John Charles")
        assert q.matches("Susan Boyle")
        assert not q.matches("john charles")
        assert not q.matches("John")

    def test_example_2_equivalence(self, q):
        # r1[name] ≡_Q1 r2[name] because both project to "John "
        assert q.equivalent("John Charles", "John Bosco")
        assert not q.equivalent("John Charles", "Susan Boyle")

    def test_projection_contains_first_name(self, q):
        assert q.project("John Charles") == ("John ",)

    def test_embedded_pattern_method(self, q):
        embedded = q.embedded_pattern()
        assert embedded.matches("John Charles")
        assert embedded.to_text() == "\\LU\\LL*\\ \\A*"


class TestConstrainedWordSequence:
    def test_second_token_constrained(self):
        words = [parse_pattern("\\LU\\LL+\\S"), parse_pattern("\\LU\\LL+")]
        q = constrained_word_sequence(words, 1)
        assert q.matches("Holloway, Donald E.")
        assert q.project("Holloway, Donald E.") == ("Donald",)
        assert q.equivalent("Holloway, Donald E.", "Kimbell, Donald")
        assert not q.equivalent("Holloway, Donald E.", "Jones, Stacey R.")

    def test_invalid_constrained_index(self):
        with pytest.raises(ConstraintError):
            constrained_word_sequence([parse_pattern("\\LL+")], 5)

    def test_empty_word_list(self):
        with pytest.raises(ConstraintError):
            constrained_word_sequence([], 0)

    def test_without_trailing_any(self):
        q = constrained_word_sequence([parse_pattern("\\LL+")], 0, trailing_any=False)
        assert q.matches("abc")
        assert not q.matches("abc def")


class TestConstrainedPrefixFactory:
    def test_rejects_non_positive_length(self):
        with pytest.raises(ConstraintError):
            constrained_prefix(0, Pattern.any_string())

    def test_default_head_is_any_class(self):
        q = constrained_prefix(2, Pattern.any_string())
        assert q.to_text() == "⟨\\A{2}⟩\\A*"
        assert q.project("abcd") == ("ab",)

    def test_constrained_segments_listed(self):
        q = constrained_prefix(2, Pattern.any_string())
        assert len(q.constrained_segments) == 1
