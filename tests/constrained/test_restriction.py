"""Tests for the restriction relation between constrained patterns."""

import itertools
import random

import pytest

from repro.constrained.constrained_pattern import ConstrainedPattern
from repro.constrained.restriction import is_restriction_of


def cp(text: str) -> ConstrainedPattern:
    return ConstrainedPattern.parse(text)


class TestExample2:
    """Example 2 of the paper: Q2 ⊆ Q1 (Q2 is a restriction of Q1)."""

    def test_q2_is_a_restriction_of_q1(self):
        q1 = cp("⟨\\LU\\LL*\\ ⟩\\A*")
        q2 = cp("⟨\\LU\\LL*\\ ⟩\\A*\\ ⟨\\LU\\LL*⟩")
        assert is_restriction_of(q2, q1)

    def test_q1_is_not_a_restriction_of_q2(self):
        q1 = cp("⟨\\LU\\LL*\\ ⟩\\A*")
        q2 = cp("⟨\\LU\\LL*\\ ⟩\\A*\\ ⟨\\LU\\LL*⟩")
        assert not is_restriction_of(q1, q2)


class TestPrefixFamilies:
    def test_longer_prefix_is_a_restriction_of_shorter(self):
        longer = cp("⟨\\D{4}⟩\\D")
        shorter = cp("⟨\\D{3}⟩\\D{2}")
        assert is_restriction_of(longer, shorter)
        assert not is_restriction_of(shorter, longer)

    def test_reflexive(self):
        q = cp("⟨\\D{3}⟩\\D{2}")
        assert is_restriction_of(q, q)

    def test_unrelated_shapes(self):
        zip_prefix = cp("⟨\\D{3}⟩\\D{2}")
        name_prefix = cp("⟨\\LU\\LL*\\ ⟩\\A*")
        assert not is_restriction_of(zip_prefix, name_prefix)
        assert not is_restriction_of(name_prefix, zip_prefix)

    def test_whole_value_is_a_restriction_of_prefix(self):
        whole = cp("⟨\\D{5}⟩")
        prefix = cp("⟨\\D{3}⟩\\D{2}")
        assert is_restriction_of(whole, prefix)


class TestSemanticSoundness:
    """is_restriction_of(Q, Q') must imply: s ≡_Q s' ⇒ s ≡_Q' s' (checked on
    randomized concrete string pairs for the generated families)."""

    PAIRS = [
        ("⟨\\D{4}⟩\\D", "⟨\\D{3}⟩\\D{2}"),
        ("⟨\\D{5}⟩", "⟨\\D{3}⟩\\D{2}"),
        ("⟨\\LU\\LL*\\ ⟩\\A*\\ ⟨\\LU\\LL*⟩", "⟨\\LU\\LL*\\ ⟩\\A*"),
    ]

    @pytest.mark.parametrize("restricted_text,general_text", PAIRS)
    def test_equivalence_implication_on_samples(self, restricted_text, general_text):
        restricted = cp(restricted_text)
        general = cp(general_text)
        assert is_restriction_of(restricted, general)
        rng = random.Random(7)
        samples = _sample_strings(rng)
        for left, right in itertools.combinations(samples, 2):
            if restricted.equivalent(left, right):
                assert general.equivalent(left, right), (left, right)


def _sample_strings(rng, count=30):
    """Digit strings and name-like strings exercising both families."""
    samples = []
    for _ in range(count // 2):
        samples.append("".join(rng.choice("0123456789") for _ in range(5)))
    first_names = ["John", "Susan", "Donald", "Stacey"]
    last_names = ["Boyle", "Charles", "Orlean", "Bosco"]
    for _ in range(count // 2):
        samples.append(f"{rng.choice(first_names)} {rng.choice(last_names)}")
    return samples
