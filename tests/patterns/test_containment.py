"""Tests for pattern containment ``P ⊆ P'``."""

import pytest

from repro.patterns import parse_pattern, pattern_contains, patterns_equivalent


def contains(inner_text: str, outer_text: str) -> bool:
    return pattern_contains(parse_pattern(inner_text), parse_pattern(outer_text))


class TestPaperExample:
    def test_example_1_d5_contained_in_d_star(self):
        # P1 = \D{5}, P2 = \D*: P1 ⊆ P2
        assert contains("\\D{5}", "\\D*")
        assert not contains("\\D*", "\\D{5}")


class TestBasicContainment:
    def test_every_pattern_contains_itself(self):
        for text in ("\\D{5}", "900\\D{2}", "\\LU\\LL*\\ \\A*", "abc"):
            assert contains(text, text)

    def test_literal_contained_in_its_class(self):
        assert contains("9", "\\D")
        assert contains("a", "\\LL")
        assert contains("Z", "\\LU")
        assert contains("-", "\\S")

    def test_class_not_contained_in_literal(self):
        assert not contains("\\D", "9")

    def test_classes_contained_in_any(self):
        for class_text in ("\\D", "\\LU", "\\LL", "\\S"):
            assert contains(class_text, "\\A")

    def test_sibling_classes_are_incomparable(self):
        assert not contains("\\D", "\\LU")
        assert not contains("\\LU", "\\LL")

    def test_everything_contained_in_any_star(self):
        for text in ("\\D{5}", "900\\D{2}", "\\LU\\LL*\\ \\A*", "abc", "\\A*"):
            assert contains(text, "\\A*")

    def test_any_star_not_contained_in_narrower(self):
        assert not contains("\\A*", "\\D*")


class TestQuantifierContainment:
    def test_exact_contained_in_star(self):
        assert contains("\\D{3}", "\\D*")
        assert contains("\\D{3}", "\\D+")

    def test_plus_contained_in_star(self):
        assert contains("\\D+", "\\D*")
        assert not contains("\\D*", "\\D+")

    def test_range_contained_in_wider_range(self):
        assert contains("\\D{2,3}", "\\D{1,4}")
        assert not contains("\\D{1,4}", "\\D{2,3}")

    def test_concatenation_refines(self):
        # 900\D{2} is a restriction of \D{5} and of \D{3}\D{2}
        assert contains("900\\D{2}", "\\D{5}")
        assert contains("900\\D{2}", "\\D{3}\\D{2}")
        assert not contains("\\D{5}", "900\\D{2}")

    def test_q2_contained_in_q1_from_example_2(self):
        # Q2 = \LU\LL*\ \A*\ \LU\LL* embedded, Q1 = \LU\LL*\ \A*
        assert contains("\\LU\\LL*\\ \\A*\\ \\LU\\LL*", "\\LU\\LL*\\ \\A*")

    def test_unrelated_literals(self):
        assert not contains("850\\D{7}", "607\\D{7}")


class TestEquivalence:
    def test_structurally_different_but_equivalent(self):
        assert patterns_equivalent(
            parse_pattern("\\D\\D"), parse_pattern("\\D{2}")
        )
        assert patterns_equivalent(
            parse_pattern("\\D{2,}"), parse_pattern("\\D\\D\\D*")
        )

    def test_non_equivalent(self):
        assert not patterns_equivalent(
            parse_pattern("\\D{2}"), parse_pattern("\\D{3}")
        )


class TestContainmentConsistentWithSampling:
    """Randomized cross-check: if P ⊆ P', every sampled match of P matches P'."""

    PAIRS = [
        ("900\\D{2}", "\\D{5}"),
        ("\\D{3}", "\\D+"),
        ("John\\ \\A*", "\\LU\\LL*\\ \\A*"),
        ("\\LL{2,4}", "\\LL*"),
        ("a\\D{2}b", "\\A+"),
    ]

    @pytest.mark.parametrize("inner,outer", PAIRS)
    def test_sampled_strings_respect_containment(self, inner, outer):
        import itertools
        import random

        inner_pattern = parse_pattern(inner)
        outer_pattern = parse_pattern(outer)
        assert pattern_contains(inner_pattern, outer_pattern)
        rng = random.Random(13)
        samples = _sample_matches(inner_pattern, rng, count=40)
        for value in samples:
            assert inner_pattern.matches(value)
            assert outer_pattern.matches(value), value

    def test_pattern_method_wrappers(self):
        inner = parse_pattern("900\\D{2}")
        outer = parse_pattern("\\D{5}")
        assert inner.is_contained_in(outer)
        assert outer.contains(inner)
        assert not inner.contains(outer)


def _sample_matches(pattern, rng, count=20):
    """Generate random strings matching a pattern by walking its elements."""
    from repro.patterns.syntax import ClassAtom, Literal

    samples = []
    for _ in range(count):
        parts = []
        for element in pattern.elements:
            minimum = element.quantifier.minimum
            maximum = element.quantifier.maximum
            reps = minimum if maximum is None else rng.randint(minimum, maximum)
            if maximum is None:
                reps = minimum + rng.randint(0, 3)
            for _ in range(reps):
                atom = element.atom
                if isinstance(atom, Literal):
                    parts.append(atom.char)
                else:
                    parts.append(rng.choice(atom.char_class.sample_chars()))
        samples.append("".join(parts))
    return samples
