"""Tests for Tokenize and NGrams (Figure 2, lines 6–7)."""

import pytest

from repro.patterns.tokenizer import (
    Token,
    iter_token_modes,
    ngrams,
    prefix_ngrams,
    tokenize,
)


class TestTokenize:
    def test_simple_words(self):
        tokens = tokenize("John Charles")
        assert [t.text for t in tokens] == ["John", "Charles"]
        assert [t.position for t in tokens] == [0, 1]
        assert [t.start for t in tokens] == [0, 5]

    def test_paper_full_name(self):
        tokens = tokenize("Holloway, Donald E.")
        assert [t.text for t in tokens] == ["Holloway,", "Donald", "E."]
        assert [t.normalized for t in tokens] == ["Holloway", "Donald", "E"]
        assert tokens[1].position == 1
        assert tokens[1].start == 10

    def test_multiple_spaces(self):
        tokens = tokenize("a   b")
        assert [t.text for t in tokens] == ["a", "b"]
        assert tokens[1].start == 4

    def test_leading_and_trailing_whitespace(self):
        tokens = tokenize("  hello  ")
        assert [t.text for t in tokens] == ["hello"]
        assert tokens[0].position == 0

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("   ") == []

    def test_single_token(self):
        tokens = tokenize("90001")
        assert len(tokens) == 1
        assert tokens[0].text == "90001"

    def test_tabs_and_newlines_are_separators(self):
        tokens = tokenize("a\tb\nc")
        assert [t.text for t in tokens] == ["a", "b", "c"]

    def test_is_numeric(self):
        tokens = tokenize("call 555 now")
        assert [t.is_numeric for t in tokens] == [False, True, False]


class TestNgrams:
    def test_basic_ngrams(self):
        grams = ngrams("90001", 3)
        assert [g.text for g in grams] == ["900", "000", "001"]
        assert [g.position for g in grams] == [0, 1, 2]

    def test_ngram_equal_to_length(self):
        grams = ngrams("abc", 3)
        assert [g.text for g in grams] == ["abc"]

    def test_ngram_longer_than_value(self):
        assert ngrams("ab", 3) == []

    def test_ngram_size_one(self):
        assert [g.text for g in ngrams("abc", 1)] == ["a", "b", "c"]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ngrams("abc", 0)


class TestPrefixNgrams:
    def test_default_sizes(self):
        grams = prefix_ngrams("90001")
        assert [g.text for g in grams] == ["9", "90", "900", "9000", "90001"]
        assert all(g.position == 0 for g in grams)

    def test_short_value(self):
        grams = prefix_ngrams("ab")
        assert [g.text for g in grams] == ["a", "ab"]

    def test_custom_sizes(self):
        grams = prefix_ngrams("8505467600", sizes=[3])
        assert [g.text for g in grams] == ["850"]


class TestIterTokenModes:
    def test_token_mode(self):
        tokens = list(iter_token_modes("John Charles", "token"))
        assert [t.text for t in tokens] == ["John", "Charles"]

    def test_ngram_mode(self):
        tokens = list(iter_token_modes("90001", "ngram", ngram_size=2))
        assert [t.text for t in tokens] == ["90", "00", "00", "01"]

    def test_prefix_mode(self):
        tokens = list(iter_token_modes("90001", "prefix"))
        assert tokens[0].text == "9"

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            list(iter_token_modes("x", "bogus"))
