"""Tests for the pattern AST building blocks."""

import pytest

from repro.errors import PatternSyntaxError
from repro.patterns.alphabet import CharClass
from repro.patterns.syntax import (
    ClassAtom,
    Element,
    Literal,
    ONE,
    PLUS,
    Quantifier,
    STAR,
    literal_elements,
)


class TestLiteral:
    def test_matches_only_its_char(self):
        literal = Literal("a")
        assert literal.matches_char("a")
        assert not literal.matches_char("b")

    def test_requires_single_character(self):
        with pytest.raises(PatternSyntaxError):
            Literal("ab")
        with pytest.raises(PatternSyntaxError):
            Literal("")

    def test_to_text_escapes_specials(self):
        assert Literal(" ").to_text() == "\\ "
        assert Literal("{").to_text() == "\\{"
        assert Literal("a").to_text() == "a"

    def test_char_class_of_literal(self):
        assert Literal("a").char_class is CharClass.LOWER
        assert Literal("7").char_class is CharClass.DIGIT


class TestClassAtom:
    def test_matches_members(self):
        atom = ClassAtom(CharClass.DIGIT)
        assert atom.matches_char("5")
        assert not atom.matches_char("x")

    def test_to_text(self):
        assert ClassAtom(CharClass.UPPER).to_text() == "\\LU"


class TestQuantifier:
    def test_constants(self):
        assert ONE.is_single
        assert STAR.is_star
        assert PLUS.is_plus

    def test_invalid_bounds(self):
        with pytest.raises(PatternSyntaxError):
            Quantifier(-1, 2)
        with pytest.raises(PatternSyntaxError):
            Quantifier(3, 2)

    def test_to_text(self):
        assert ONE.to_text() == ""
        assert STAR.to_text() == "*"
        assert PLUS.to_text() == "+"
        assert Quantifier(3, 3).to_text() == "{3}"
        assert Quantifier(2, 5).to_text() == "{2,5}"
        assert Quantifier(2, None).to_text() == "{2,}"

    def test_is_unbounded(self):
        assert Quantifier(2, None).is_unbounded
        assert not Quantifier(2, 4).is_unbounded


class TestElement:
    def test_min_max_length(self):
        element = Element(ClassAtom(CharClass.DIGIT), Quantifier(2, 5))
        assert element.min_length == 2
        assert element.max_length == 5

    def test_to_text(self):
        element = Element(Literal("x"), PLUS)
        assert element.to_text() == "x+"

    def test_matches_char_delegates_to_atom(self):
        element = Element(ClassAtom(CharClass.LOWER), STAR)
        assert element.matches_char("q")
        assert not element.matches_char("Q")


class TestLiteralElements:
    def test_builds_one_element_per_char(self):
        elements = literal_elements("abc")
        assert len(elements) == 3
        assert all(e.quantifier is ONE for e in elements)
        assert [e.atom.char for e in elements] == ["a", "b", "c"]

    def test_empty_string(self):
        assert literal_elements("") == []
