"""Property-based tests (hypothesis) for the pattern language core.

Invariants checked:

* generalization soundness — the level-k generalization of a value always
  matches the value, and levels are ordered by containment;
* parser/printer round-trip — ``parse(p.to_text()) == p``;
* backend agreement — the NFA simulation and the compiled regex accept
  exactly the same strings;
* containment is consistent with matching on concrete samples;
* tokenization offsets index back into the original string.
"""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st

from repro.patterns import (
    Pattern,
    parse_pattern,
    pattern_contains,
)
from repro.patterns.generalize import generalize_string, generalize_strings, signature_of
from repro.patterns.tokenizer import ngrams, tokenize

#: Printable-ish text covering all four character classes.
VALUE_ALPHABET = string.ascii_letters + string.digits + " -.,_/"
values = st.text(alphabet=VALUE_ALPHABET, min_size=0, max_size=24)
non_empty_values = st.text(alphabet=VALUE_ALPHABET, min_size=1, max_size=24)


# -- random pattern construction -----------------------------------------------------------

_class_tokens = st.sampled_from(["\\A", "\\LU", "\\LL", "\\D", "\\S"])
_literal_tokens = st.sampled_from(list(string.ascii_letters + string.digits + "-.,"))
_quantifiers = st.sampled_from(["", "*", "+", "{2}", "{1,3}", "{2,}"])


@st.composite
def pattern_texts(draw) -> str:
    """Random pattern text in the restricted grammar (1–6 elements)."""
    n_elements = draw(st.integers(min_value=1, max_value=6))
    parts = []
    for _ in range(n_elements):
        atom = draw(st.one_of(_class_tokens, _literal_tokens))
        parts.append(atom + draw(_quantifiers))
    return "".join(parts)


@st.composite
def patterns_with_samples(draw):
    """A random pattern together with a string sampled from its language."""
    from repro.patterns.syntax import ClassAtom, Literal

    text = draw(pattern_texts())
    pattern = parse_pattern(text)
    parts = []
    for element in pattern.elements:
        minimum = element.quantifier.minimum
        maximum = element.quantifier.maximum
        upper = minimum + 2 if maximum is None else maximum
        reps = draw(st.integers(min_value=minimum, max_value=upper))
        for _ in range(reps):
            if isinstance(element.atom, Literal):
                parts.append(element.atom.char)
            else:
                parts.append(draw(st.sampled_from(element.atom.char_class.sample_chars())))
    return pattern, "".join(parts)


# -- generalization -----------------------------------------------------------------------------


@given(non_empty_values)
def test_generalization_matches_its_source(value):
    for level in (0, 1, 2, 3):
        assert generalize_string(value, level=level).matches(value)


@given(non_empty_values)
def test_generalization_levels_are_ordered_by_containment(value):
    level1 = generalize_string(value, level=1)
    level3 = generalize_string(value, level=3)
    assert pattern_contains(level1, level3)


@given(st.lists(non_empty_values, min_size=1, max_size=8))
def test_generalize_strings_covers_all_inputs(values_list):
    pattern = generalize_strings(values_list)
    if pattern is None:
        # Only allowed when the values do not share a run signature.
        assert len({signature_of(v) for v in values_list}) > 1
    else:
        for value in values_list:
            assert pattern.matches(value)


@given(non_empty_values)
def test_signature_matches_level_one_classes(value):
    level1 = generalize_string(value, level=1)
    classes = [element.atom.char_class for element in level1.elements]
    assert tuple(classes) == signature_of(value)


# -- parsing / printing --------------------------------------------------------------------------


@given(pattern_texts())
def test_parse_print_round_trip(text):
    pattern = parse_pattern(text)
    assert parse_pattern(pattern.to_text()) == pattern


@given(pattern_texts())
def test_min_length_never_exceeds_max_length(text):
    pattern = parse_pattern(text)
    maximum = pattern.max_length()
    if maximum is not None:
        assert pattern.min_length() <= maximum


# -- matching backends ----------------------------------------------------------------------------


@settings(max_examples=150)
@given(pattern_texts(), values)
def test_regex_and_nfa_backends_agree(text, value):
    pattern = parse_pattern(text)
    assert pattern.matches(value) == pattern.matches_via_nfa(value)


@settings(max_examples=150)
@given(patterns_with_samples())
def test_sampled_strings_match_their_pattern(pattern_and_sample):
    pattern, sample = pattern_and_sample
    assert pattern.matches(sample)
    assert pattern.matches_via_nfa(sample)


@settings(max_examples=100)
@given(patterns_with_samples())
def test_matches_imply_length_bounds(pattern_and_sample):
    pattern, sample = pattern_and_sample
    assert pattern.min_length() <= len(sample)
    maximum = pattern.max_length()
    if maximum is not None:
        assert len(sample) <= maximum


# -- containment -------------------------------------------------------------------------------------


@settings(max_examples=75)
@given(patterns_with_samples())
def test_everything_is_contained_in_any_star(pattern_and_sample):
    pattern, _sample = pattern_and_sample
    assert pattern_contains(pattern, Pattern.any_string())


@settings(max_examples=75)
@given(patterns_with_samples(), pattern_texts())
def test_containment_is_consistent_with_sampled_matches(pattern_and_sample, other_text):
    pattern, sample = pattern_and_sample
    other = parse_pattern(other_text)
    if pattern_contains(pattern, other):
        assert other.matches(sample)


@given(non_empty_values)
def test_literal_pattern_contained_in_its_generalization(value):
    literal = Pattern.literal(value)
    generalized = generalize_string(value, level=1)
    assert pattern_contains(literal, generalized)


# -- tokenizer ------------------------------------------------------------------------------------------


@given(values)
def test_token_offsets_index_into_the_value(value):
    for token in tokenize(value):
        assert value[token.start : token.start + len(token.text)] == token.text


@given(values)
def test_tokens_do_not_contain_whitespace(value):
    for token in tokenize(value):
        assert " " not in token.text


@given(non_empty_values, st.integers(min_value=1, max_value=5))
def test_ngram_count_and_offsets(value, n):
    grams = ngrams(value, n)
    expected = max(0, len(value) - n + 1)
    assert len(grams) == expected
    for gram in grams:
        assert value[gram.start : gram.start + n] == gram.text
