"""Tests for the pattern parser (the paper's concrete syntax)."""

import pytest

from repro.errors import PatternSyntaxError
from repro.patterns.alphabet import CharClass
from repro.patterns.parser import parse_elements, parse_pattern
from repro.patterns.syntax import ClassAtom, Literal


class TestParsingAtoms:
    def test_plain_literals(self):
        elements = parse_elements("900")
        assert [e.atom for e in elements] == [Literal("9"), Literal("0"), Literal("0")]

    def test_class_tokens(self):
        elements = parse_elements("\\A\\LU\\LL\\D\\S")
        classes = [e.atom.char_class for e in elements]
        assert classes == [
            CharClass.ANY,
            CharClass.UPPER,
            CharClass.LOWER,
            CharClass.DIGIT,
            CharClass.SYMBOL,
        ]

    def test_escaped_space_literal(self):
        elements = parse_elements("a\\ b")
        assert elements[1].atom == Literal(" ")

    def test_escaped_backslash(self):
        elements = parse_elements("\\\\")
        assert elements == parse_elements("\\\\")
        assert elements[0].atom == Literal("\\")

    def test_dangling_backslash_is_an_error(self):
        with pytest.raises(PatternSyntaxError):
            parse_elements("abc\\")

    def test_lu_wins_over_single_letter_escape(self):
        elements = parse_elements("\\LU")
        assert isinstance(elements[0].atom, ClassAtom)
        assert elements[0].atom.char_class is CharClass.UPPER
        assert len(elements) == 1


class TestParsingQuantifiers:
    def test_exact_repetition(self):
        elements = parse_elements("\\D{5}")
        assert len(elements) == 1
        assert elements[0].quantifier.minimum == 5
        assert elements[0].quantifier.maximum == 5

    def test_range_repetition(self):
        elements = parse_elements("\\LL{2,4}")
        assert elements[0].quantifier.minimum == 2
        assert elements[0].quantifier.maximum == 4

    def test_open_ended_repetition(self):
        elements = parse_elements("\\D{3,}")
        assert elements[0].quantifier.minimum == 3
        assert elements[0].quantifier.maximum is None

    def test_star(self):
        elements = parse_elements("\\A*")
        assert elements[0].quantifier.is_star

    def test_plus(self):
        elements = parse_elements("\\LL+")
        assert elements[0].quantifier.is_plus

    def test_quantifier_on_literal(self):
        elements = parse_elements("x{3}")
        assert elements[0].atom == Literal("x")
        assert elements[0].quantifier.minimum == 3

    def test_quantifier_without_atom_is_an_error(self):
        with pytest.raises(PatternSyntaxError):
            parse_elements("*abc")

    def test_unterminated_quantifier_is_an_error(self):
        with pytest.raises(PatternSyntaxError):
            parse_elements("\\D{5")

    def test_empty_quantifier_is_an_error(self):
        with pytest.raises(PatternSyntaxError):
            parse_elements("\\D{}")


class TestPaperPatterns:
    """Every pattern that appears in the paper must parse and round-trip."""

    PAPER_PATTERNS = [
        "\\D{5}",
        "\\D*",
        "900\\D{2}",
        "John\\ \\A*",
        "Susan\\ \\A*",
        "\\LU\\LL*\\ \\A*",
        "\\D{3}\\ \\D{2}",
        "850\\D{7}",
        "607\\D{7}",
        "404\\D{7}",
        "217\\D{7}",
        "860\\D{7}",
        "\\A*,\\ Donald\\A*",
        "\\A*,\\ Stacey\\A*",
        "\\A*,\\ David",
        "6060\\D",
        "60\\D{3}",
        "95\\D{3}",
        "\\LU\\LL*\\ \\A*\\ \\LU\\LL*",
    ]

    @pytest.mark.parametrize("text", PAPER_PATTERNS)
    def test_parses(self, text):
        pattern = parse_pattern(text)
        assert len(pattern) >= 1

    @pytest.mark.parametrize("text", PAPER_PATTERNS)
    def test_round_trips_to_equivalent_text(self, text):
        pattern = parse_pattern(text)
        reparsed = parse_pattern(pattern.to_text())
        assert reparsed == pattern

    def test_source_is_preserved(self):
        pattern = parse_pattern("\\D{5}")
        assert pattern.source == "\\D{5}"
