"""Pattern equality/hashing semantics — patterns as cache and dict keys.

The shared compiled-pattern caches key on the Pattern value itself, so
structural equality and a stable hash are load-bearing: two patterns
built through different constructors must collide exactly when their
element tuples agree.
"""

import pickle

from repro.patterns import parse_pattern
from repro.patterns.pattern import Pattern
from repro.patterns.syntax import ONE, Quantifier


class TestEquality:
    def test_equal_by_elements_regardless_of_construction(self):
        parsed = parse_pattern("900\\D{2}")
        rebuilt = Pattern(parsed.elements)
        assert parsed == rebuilt
        assert parsed is not rebuilt

    def test_literal_constructor_equals_parsed(self):
        assert Pattern.literal("abc") == parse_pattern("abc")

    def test_source_text_does_not_affect_equality(self):
        # Same elements, different original source strings.
        spelled = parse_pattern("a")
        copied = Pattern(spelled.elements, source="something else")
        assert spelled == copied
        assert hash(spelled) == hash(copied)

    def test_unequal_patterns(self):
        assert parse_pattern("\\D{5}") != parse_pattern("\\D{4}")
        assert parse_pattern("\\LU\\LL*") != parse_pattern("\\LL*\\LU")

    def test_not_equal_to_other_types(self):
        assert parse_pattern("abc") != "abc"
        assert parse_pattern("abc").__eq__("abc") is NotImplemented


class TestHashing:
    def test_equal_patterns_hash_equal(self):
        assert hash(parse_pattern("850\\D{7}")) == hash(
            Pattern(parse_pattern("850\\D{7}").elements)
        )

    def test_hash_is_stable_across_calls(self):
        pattern = parse_pattern("\\LU\\LL+\\ \\A*")
        assert hash(pattern) == hash(pattern)

    def test_usable_as_dict_key(self):
        cache = {}
        first = parse_pattern("606\\D{2}")
        second = Pattern(first.elements)
        cache[first] = "compiled"
        assert cache[second] == "compiled"
        cache[second] = "recompiled"
        assert len(cache) == 1

    def test_usable_in_sets(self):
        patterns = {
            parse_pattern("\\D{5}"),
            Pattern(parse_pattern("\\D{5}").elements),
            parse_pattern("\\D{4}"),
        }
        assert len(patterns) == 2

    def test_hash_matches_elements_tuple_convention(self):
        pattern = parse_pattern("90\\D*")
        assert hash(pattern) == hash(pattern.elements)


class TestPickling:
    def test_roundtrip_preserves_equality_and_matching(self):
        pattern = parse_pattern("850\\D{7}")
        assert pattern.matches("8505467600")
        clone = pickle.loads(pickle.dumps(pattern))
        assert clone == pattern
        assert hash(clone) == hash(pattern)
        assert clone.matches("8505467600")
        assert not clone.matches("123")

    def test_roundtrip_preserves_source(self):
        pattern = parse_pattern("\\LU\\LL*")
        clone = pickle.loads(pickle.dumps(pattern))
        assert clone.source == pattern.source


class TestQuantifierInteraction:
    def test_one_vs_explicit_single_quantifier(self):
        # ONE is Quantifier(1, 1) — however it is spelled, the element
        # tuples must compare equal for cache keying to work.
        explicit = Quantifier(1, 1)
        assert ONE == explicit
        single = Pattern.of_class(parse_pattern("\\D").elements[0].atom.char_class, ONE)
        spelled = Pattern.of_class(
            parse_pattern("\\D").elements[0].atom.char_class, explicit
        )
        assert single == spelled
        assert hash(single) == hash(spelled)
