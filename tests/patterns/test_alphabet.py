"""Tests for the generalization tree (Figure 1)."""

import pytest

from repro.patterns.alphabet import (
    CharClass,
    GENERALIZATION_TREE,
    GeneralizationTree,
    classify_char,
)


class TestClassifyChar:
    def test_upper_case_letters(self):
        for char in "AZM":
            assert classify_char(char) is CharClass.UPPER

    def test_lower_case_letters(self):
        for char in "azm":
            assert classify_char(char) is CharClass.LOWER

    def test_digits(self):
        for char in "059":
            assert classify_char(char) is CharClass.DIGIT

    def test_symbols(self):
        for char in " -_,.!/\\":
            assert classify_char(char) is CharClass.SYMBOL

    def test_non_ascii_is_symbol(self):
        assert classify_char("é") is CharClass.SYMBOL

    def test_rejects_multi_character_input(self):
        with pytest.raises(ValueError):
            classify_char("ab")

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            classify_char("")


class TestCharClassMembership:
    def test_any_contains_everything(self):
        for char in "Aa0 -é":
            assert CharClass.ANY.contains_char(char)

    def test_upper_membership(self):
        assert CharClass.UPPER.contains_char("Q")
        assert not CharClass.UPPER.contains_char("q")
        assert not CharClass.UPPER.contains_char("5")

    def test_lower_membership(self):
        assert CharClass.LOWER.contains_char("q")
        assert not CharClass.LOWER.contains_char("Q")

    def test_digit_membership(self):
        assert CharClass.DIGIT.contains_char("7")
        assert not CharClass.DIGIT.contains_char("x")

    def test_symbol_membership(self):
        assert CharClass.SYMBOL.contains_char("-")
        assert CharClass.SYMBOL.contains_char(" ")
        assert not CharClass.SYMBOL.contains_char("a")
        assert not CharClass.SYMBOL.contains_char("3")

    def test_multi_character_string_is_not_a_member(self):
        assert not CharClass.UPPER.contains_char("AB")

    def test_every_char_belongs_to_its_classified_class(self):
        for char in "Aa0-":
            assert classify_char(char).contains_char(char)

    def test_token_rendering(self):
        assert CharClass.UPPER.token == "\\LU"
        assert CharClass.LOWER.token == "\\LL"
        assert CharClass.DIGIT.token == "\\D"
        assert CharClass.SYMBOL.token == "\\S"
        assert CharClass.ANY.token == "\\A"

    def test_sample_chars_are_members(self):
        for char_class in CharClass:
            for char in char_class.sample_chars():
                assert char_class.contains_char(char)


class TestGeneralizationTree:
    def test_root_is_any(self):
        assert GeneralizationTree.ROOT is CharClass.ANY

    def test_children_of_root_match_figure_1(self):
        children = GENERALIZATION_TREE.children(CharClass.ANY)
        assert children == [
            CharClass.UPPER,
            CharClass.LOWER,
            CharClass.DIGIT,
            CharClass.SYMBOL,
        ]

    def test_intermediate_nodes_have_no_class_children(self):
        for node in (CharClass.UPPER, CharClass.LOWER, CharClass.DIGIT, CharClass.SYMBOL):
            assert GENERALIZATION_TREE.children(node) == []

    def test_parent_of_root_is_none(self):
        assert GENERALIZATION_TREE.parent(CharClass.ANY) is None

    def test_parent_of_leaf_classes_is_root(self):
        for node in (CharClass.UPPER, CharClass.LOWER, CharClass.DIGIT, CharClass.SYMBOL):
            assert GENERALIZATION_TREE.parent(node) is CharClass.ANY

    def test_leaf_parent(self):
        assert GENERALIZATION_TREE.leaf_parent("Q") is CharClass.UPPER
        assert GENERALIZATION_TREE.leaf_parent("7") is CharClass.DIGIT

    def test_generalization_path_ends_at_root(self):
        path = GENERALIZATION_TREE.generalization_path("q")
        assert path == [CharClass.LOWER, CharClass.ANY]

    def test_is_ancestor(self):
        assert GENERALIZATION_TREE.is_ancestor(CharClass.ANY, CharClass.DIGIT)
        assert GENERALIZATION_TREE.is_ancestor(CharClass.DIGIT, CharClass.DIGIT)
        assert not GENERALIZATION_TREE.is_ancestor(CharClass.DIGIT, CharClass.UPPER)

    def test_classes_lists_all_five(self):
        assert set(GENERALIZATION_TREE.classes()) == set(CharClass)
