"""Tests for the NFA construction and the regex compilation backends."""

import re

import pytest

from repro.patterns import parse_pattern
from repro.patterns.nfa import build_nfa
from repro.patterns.parser import parse_elements
from repro.patterns.regex import compile_to_regex, element_to_regex, pattern_to_regex_source


class TestNfaConstruction:
    def test_single_literal(self):
        nfa = build_nfa(parse_elements("a"))
        assert nfa.matches_string("a")
        assert not nfa.matches_string("")
        assert not nfa.matches_string("b")
        assert not nfa.matches_string("aa")

    def test_exact_quantifier_chain(self):
        nfa = build_nfa(parse_elements("\\D{3}"))
        assert nfa.matches_string("123")
        assert not nfa.matches_string("12")
        assert not nfa.matches_string("1234")

    def test_star_self_loop(self):
        nfa = build_nfa(parse_elements("\\D*"))
        assert nfa.matches_string("")
        assert nfa.matches_string("1234567890")
        assert not nfa.matches_string("12a")

    def test_bounded_range_optional_states(self):
        nfa = build_nfa(parse_elements("\\D{1,3}"))
        assert not nfa.matches_string("")
        assert nfa.matches_string("1")
        assert nfa.matches_string("12")
        assert nfa.matches_string("123")
        assert not nfa.matches_string("1234")

    def test_empty_pattern(self):
        nfa = build_nfa([])
        assert nfa.matches_string("")
        assert not nfa.matches_string("a")

    def test_epsilon_closure_reaches_loop_state(self):
        nfa = build_nfa(parse_elements("\\D*"))
        closure = nfa.epsilon_closure([nfa.start])
        assert nfa.accept in closure

    def test_outgoing_atoms(self):
        nfa = build_nfa(parse_elements("ab"))
        atoms = nfa.outgoing_atoms([nfa.start])
        assert len(atoms) == 1


class TestRegexCompilation:
    def test_class_translations(self):
        assert pattern_to_regex_source(parse_pattern("\\D{5}")) == "[0-9]{5}"
        assert pattern_to_regex_source(parse_pattern("\\LU\\LL*")) == "[A-Z][a-z]*"
        assert pattern_to_regex_source(parse_pattern("\\S")) == "[^A-Za-z0-9]"
        assert pattern_to_regex_source(parse_pattern("\\A*")) == "[\\s\\S]*"

    def test_literal_escaping(self):
        source = pattern_to_regex_source(parse_pattern("a.b"))
        assert re.fullmatch(source, "a.b")
        assert not re.fullmatch(source, "axb")

    def test_quantifier_translations(self):
        assert pattern_to_regex_source(parse_pattern("\\D+")) == "[0-9]+"
        assert pattern_to_regex_source(parse_pattern("\\D{2,4}")) == "[0-9]{2,4}"
        assert pattern_to_regex_source(parse_pattern("\\D{2,}")) == "[0-9]{2,}"

    def test_element_to_regex_single(self):
        element = parse_elements("x")[0]
        assert element_to_regex(element) == "x"

    def test_compiled_regex_is_cached_on_pattern(self):
        pattern = parse_pattern("\\D{5}")
        assert pattern.compiled_regex() is pattern.compiled_regex()

    @pytest.mark.parametrize(
        "text,matching,non_matching",
        [
            ("850\\D{7}", "8505467600", "850546760"),
            ("\\A*,\\ Donald\\A*", "Holloway, Donald E.", "HollowayDonald"),
            ("\\LU\\LL*\\ \\A*", "Susan Boyle", "susan boyle"),
        ],
    )
    def test_fullmatch_agrees_with_pattern_matches(self, text, matching, non_matching):
        pattern = parse_pattern(text)
        regex = compile_to_regex(pattern)
        assert regex.fullmatch(matching)
        assert not regex.fullmatch(non_matching)
        assert pattern.matches(matching)
        assert not pattern.matches(non_matching)
