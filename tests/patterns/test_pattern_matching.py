"""Tests for Pattern matching semantics (``s ↦ P``)."""

import pytest

from repro.patterns import Pattern, parse_pattern
from repro.patterns.alphabet import CharClass
from repro.patterns.syntax import Quantifier


class TestPaperExamples:
    """Example 1 and the λ patterns of the paper."""

    def test_example_1_zip_matches_d5(self):
        assert parse_pattern("\\D{5}").matches("90001")

    def test_example_1_zip_matches_d_star(self):
        assert parse_pattern("\\D*").matches("90001")

    def test_lambda_1_john(self):
        pattern = parse_pattern("John\\ \\A*")
        assert pattern.matches("John Charles")
        assert pattern.matches("John Bosco")
        assert not pattern.matches("Susan Orlean")

    def test_lambda_2_susan(self):
        pattern = parse_pattern("Susan\\ \\A*")
        assert pattern.matches("Susan Orlean")
        assert pattern.matches("Susan Boyle")
        assert not pattern.matches("John Charles")

    def test_lambda_3_zip_prefix(self):
        pattern = parse_pattern("900\\D{2}")
        assert pattern.matches("90001")
        assert pattern.matches("90004")
        assert not pattern.matches("91001")
        assert not pattern.matches("9000")
        assert not pattern.matches("900011")

    def test_lambda_4_capitalized_first_name(self):
        pattern = parse_pattern("\\LU\\LL*\\ \\A*")
        assert pattern.matches("John Charles")
        assert pattern.matches("Susan Boyle")
        assert not pattern.matches("john charles")
        assert not pattern.matches("John")

    def test_table_3_phone_patterns(self):
        assert parse_pattern("850\\D{7}").matches("8505467600")
        assert parse_pattern("607\\D{7}").matches("6073771300")
        assert not parse_pattern("850\\D{7}").matches("6073771300")

    def test_table_3_full_name_patterns(self):
        pattern = parse_pattern("\\A*,\\ Donald\\A*")
        assert pattern.matches("Holloway, Donald E.")
        assert not pattern.matches("Jones, Stacey R.")

    def test_table_3_zip_patterns(self):
        assert parse_pattern("6060\\D").matches("60601")
        assert parse_pattern("60\\D{3}").matches("60603")
        assert parse_pattern("95\\D{3}").matches("95603")
        assert not parse_pattern("6060\\D").matches("60613")


class TestQuantifierSemantics:
    def test_star_matches_empty(self):
        assert parse_pattern("\\A*").matches("")

    def test_plus_requires_at_least_one(self):
        pattern = parse_pattern("\\D+")
        assert not pattern.matches("")
        assert pattern.matches("1")
        assert pattern.matches("12345")

    def test_exact_count(self):
        pattern = parse_pattern("\\LL{3}")
        assert pattern.matches("abc")
        assert not pattern.matches("ab")
        assert not pattern.matches("abcd")

    def test_bounded_range(self):
        pattern = parse_pattern("\\D{2,4}")
        assert not pattern.matches("1")
        assert pattern.matches("12")
        assert pattern.matches("123")
        assert pattern.matches("1234")
        assert not pattern.matches("12345")

    def test_open_range(self):
        pattern = parse_pattern("\\D{3,}")
        assert not pattern.matches("12")
        assert pattern.matches("123")
        assert pattern.matches("123456789")

    def test_literal_quantifier(self):
        pattern = parse_pattern("a{2}b")
        assert pattern.matches("aab")
        assert not pattern.matches("ab")

    def test_empty_pattern_matches_only_empty_string(self):
        pattern = Pattern([])
        assert pattern.matches("")
        assert not pattern.matches("x")


class TestMatchingBackends:
    """The compiled-regex backend and the NFA simulation must agree."""

    CASES = [
        ("\\D{5}", ["90001", "1234", "123456", "abcde", ""]),
        ("\\LU\\LL*\\ \\A*", ["John Charles", "john x", "J x", "John", ""]),
        ("900\\D{2}", ["90001", "90011", "89001", "900", "900123"]),
        ("\\A*,\\ Donald\\A*", ["Holloway, Donald E.", "Donald", "X, Donald", ", Donald"]),
        ("\\S+", ["---", "a-", " ", ""]),
    ]

    @pytest.mark.parametrize("text,values", CASES)
    def test_regex_and_nfa_agree(self, text, values):
        pattern = parse_pattern(text)
        for value in values:
            assert pattern.matches(value) == pattern.matches_via_nfa(value), (text, value)


class TestStructuralAccessors:
    def test_literal_prefix(self):
        assert parse_pattern("850\\D{7}").literal_prefix() == "850"
        assert parse_pattern("\\D{5}").literal_prefix() == ""
        assert parse_pattern("6060\\D").literal_prefix() == "6060"

    def test_literal_text(self):
        assert Pattern.literal("abc").literal_text() == "abc"
        assert parse_pattern("a\\D").literal_text() is None

    def test_min_max_length(self):
        pattern = parse_pattern("900\\D{2}")
        assert pattern.min_length() == 5
        assert pattern.max_length() == 5
        assert pattern.is_fixed_length()

    def test_unbounded_max_length(self):
        pattern = parse_pattern("\\D+")
        assert pattern.min_length() == 1
        assert pattern.max_length() is None
        assert not pattern.is_fixed_length()

    def test_char_classes(self):
        pattern = parse_pattern("\\LU\\LL*\\ \\A*")
        assert pattern.char_classes() == [CharClass.UPPER, CharClass.LOWER, CharClass.ANY]

    def test_concat(self):
        combined = Pattern.literal("900").concat(Pattern.of_class(CharClass.DIGIT, Quantifier(2, 2)))
        assert combined.matches("90055")
        assert combined.to_text() == "900\\D{2}"

    def test_filter_matching(self):
        pattern = parse_pattern("900\\D{2}")
        values = ["90001", "60601", "90099", "9000"]
        assert pattern.filter_matching(values) == [0, 2]

    def test_equality_and_hash(self):
        left = parse_pattern("900\\D{2}")
        right = parse_pattern("900\\D{2}")
        assert left == right
        assert hash(left) == hash(right)
        assert left != parse_pattern("900\\D{3}")

    def test_slice(self):
        pattern = parse_pattern("900\\D{2}")
        assert pattern.slice(0, 3).to_text() == "900"

    def test_any_string_factory(self):
        assert Pattern.any_string().matches("anything at all 123 !@#")
        assert Pattern.any_string().matches("")

    def test_is_empty(self):
        assert Pattern([]).is_empty()
        assert parse_pattern("\\A*").is_empty()
        assert not parse_pattern("\\A+").is_empty()
