"""Tests for string → pattern generalization and pattern histograms."""

import pytest

from repro.patterns.generalize import (
    PatternHistogram,
    generalize_string,
    generalize_strings,
    generalize_with_literal_prefix,
    signature_of,
)
from repro.patterns.alphabet import CharClass
from repro.patterns import parse_pattern


class TestSignature:
    def test_zip_signature(self):
        assert signature_of("90001") == (CharClass.DIGIT,)

    def test_name_signature(self):
        assert signature_of("John") == (CharClass.UPPER, CharClass.LOWER)

    def test_mixed_signature(self):
        assert signature_of("F-9-107") == (
            CharClass.UPPER,
            CharClass.SYMBOL,
            CharClass.DIGIT,
            CharClass.SYMBOL,
            CharClass.DIGIT,
        )

    def test_empty_signature(self):
        assert signature_of("") == ()


class TestGeneralizeString:
    def test_level_zero_is_literal(self):
        pattern = generalize_string("90001", level=0)
        assert pattern.matches("90001")
        assert not pattern.matches("90002")

    def test_level_one_exact_counts(self):
        assert generalize_string("90001", level=1).to_text() == "\\D{5}"
        assert generalize_string("John", level=1).to_text() == "\\LU\\LL{3}"

    def test_level_one_matches_value(self):
        for value in ("90001", "John Charles", "F-9-107", "CHEMBL25"):
            assert generalize_string(value, level=1).matches(value)

    def test_level_two_plus_quantifiers(self):
        pattern = generalize_string("John", level=2)
        assert pattern.matches("John")
        assert pattern.matches("Jonathan")
        assert not pattern.matches("JOHN")

    def test_level_three_any_star(self):
        assert generalize_string("anything", level=3).to_text() == "\\A*"

    def test_empty_string(self):
        pattern = generalize_string("", level=1)
        assert pattern.matches("")


class TestGeneralizeStrings:
    def test_merges_equal_counts(self):
        pattern = generalize_strings(["90001", "60601", "10001"])
        assert pattern.to_text() == "\\D{5}"

    def test_merges_different_counts_into_range(self):
        pattern = generalize_strings(["John", "Jo", "Jonathan"])
        assert pattern is not None
        for value in ("John", "Jo", "Jonathan", "Kim"):
            assert pattern.matches(value) == (value[0].isupper() and 1 <= len(value) - 1 <= 7)

    def test_returns_none_for_mixed_signatures(self):
        assert generalize_strings(["90001", "John"]) is None

    def test_returns_none_for_empty_input(self):
        assert generalize_strings([]) is None

    def test_covers_every_input(self):
        values = ["Holloway,", "Jones,", "Kimbell,", "Mallack,"]
        pattern = generalize_strings(values)
        assert pattern is not None
        for value in values:
            assert pattern.matches(value)

    def test_single_value(self):
        pattern = generalize_strings(["90001"])
        assert pattern.to_text() == "\\D{5}"


class TestGeneralizeWithLiteralPrefix:
    def test_zip_prefix(self):
        pattern = generalize_with_literal_prefix(["90001", "90002", "90099"], 3)
        assert pattern.to_text() == "900\\D{2}"

    def test_phone_prefix(self):
        values = ["8505467600", "8501234567", "8509999999"]
        pattern = generalize_with_literal_prefix(values, 3)
        assert pattern.to_text() == "850\\D{7}"

    def test_rejects_non_shared_prefix(self):
        assert generalize_with_literal_prefix(["90001", "60601"], 3) is None

    def test_prefix_longer_than_value(self):
        assert generalize_with_literal_prefix(["90"], 3) is None

    def test_whole_value_prefix(self):
        pattern = generalize_with_literal_prefix(["90001", "90001"], 5)
        assert pattern.to_text() == "90001"

    def test_empty_input(self):
        assert generalize_with_literal_prefix([], 2) is None

    def test_mixed_suffix_signatures_fall_back_to_any_star(self):
        pattern = generalize_with_literal_prefix(["AB12", "ABx-"], 2)
        assert pattern is not None
        assert pattern.matches("AB12")
        assert pattern.matches("ABx-")


class TestPatternHistogram:
    def test_counts_by_pattern(self):
        histogram = PatternHistogram(["90001", "90002", "1234", "abcd"])
        entries = {e.text: e.count for e in histogram.entries()}
        assert entries["\\D{5}"] == 2
        assert entries["\\D{4}"] == 1
        assert entries["\\LL{4}"] == 1
        assert histogram.total == 4

    def test_entries_sorted_by_frequency(self):
        histogram = PatternHistogram(["90001", "90002", "1234"])
        assert histogram.entries()[0].text == "\\D{5}"

    def test_dominant_patterns(self):
        values = ["90001"] * 98 + ["x1", "y2"]
        histogram = PatternHistogram(values)
        dominant = histogram.dominant_patterns(min_ratio=0.5)
        assert len(dominant) == 1
        assert dominant[0].text == "\\D{5}"

    def test_rare_patterns(self):
        values = ["90001"] * 99 + ["xx"]
        histogram = PatternHistogram(values)
        rare = histogram.rare_patterns(max_ratio=0.05)
        assert [e.text for e in rare] == ["\\LL{2}"]

    def test_examples_are_capped(self):
        histogram = PatternHistogram([f"{i:05d}" for i in range(10_000, 10_050)], max_examples=3)
        entry = histogram.entries()[0]
        assert len(entry.examples) == 3

    def test_coverage_of(self):
        histogram = PatternHistogram(["90001", "90002", "abcd"])
        coverage = histogram.coverage_of([parse_pattern("\\D{5}")])
        assert coverage == pytest.approx(2 / 3)

    def test_empty_histogram(self):
        histogram = PatternHistogram([])
        assert histogram.total == 0
        assert histogram.entries() == []
        assert histogram.dominant_patterns() == []
        assert histogram.coverage_of([parse_pattern("\\D*")]) == 0.0
