"""Tests for CSV input/output."""

import pytest

from repro.dataset.csvio import read_csv, read_csv_text, to_csv_text, write_csv
from repro.dataset.schema import DataType
from repro.dataset.table import Table
from repro.errors import CsvFormatError

SAMPLE = "zip,city\n90001,Los Angeles\n90002,Los Angeles\n60601,Chicago\n"


class TestReadCsvText:
    def test_reads_header_and_rows(self):
        table = read_csv_text(SAMPLE)
        assert table.column_names() == ["zip", "city"]
        assert table.n_rows == 3
        assert table.cell(2, "city") == "Chicago"

    def test_type_inference_marks_zip_as_integer(self):
        table = read_csv_text(SAMPLE)
        assert table.schema["zip"].dtype is DataType.INTEGER
        assert table.schema["city"].dtype is DataType.STRING

    def test_type_inference_can_be_disabled(self):
        table = read_csv_text(SAMPLE, infer_types=False)
        assert table.schema["zip"].dtype is DataType.STRING

    def test_quoted_fields_with_commas(self):
        text = 'name,city\n"Smith, John",Boston\n'
        table = read_csv_text(text)
        assert table.cell(0, "name") == "Smith, John"

    def test_no_header_with_names(self):
        table = read_csv_text("1,2\n3,4\n", header=False, column_names=["a", "b"])
        assert table.n_rows == 2
        assert table.cell(0, "a") == "1"

    def test_no_header_without_names_is_an_error(self):
        with pytest.raises(CsvFormatError):
            read_csv_text("1,2\n", header=False)

    def test_ragged_row_is_an_error(self):
        with pytest.raises(CsvFormatError):
            read_csv_text("a,b\n1,2\n3\n")

    def test_duplicate_header_is_an_error(self):
        with pytest.raises(CsvFormatError):
            read_csv_text("a,a\n1,2\n")

    def test_empty_document_is_an_error(self):
        with pytest.raises(CsvFormatError):
            read_csv_text("")

    def test_alternative_delimiter(self):
        table = read_csv_text("a;b\n1;2\n", delimiter=";")
        assert table.cell(0, "b") == "2"

    def test_header_only_yields_zero_rows(self):
        table = read_csv_text("a,b\n")
        assert table.n_rows == 0


class TestRoundTrip:
    def test_write_and_read_file(self, tmp_path):
        original = read_csv_text(SAMPLE, infer_types=False)
        path = write_csv(original, tmp_path / "zips.csv")
        loaded = read_csv(path, infer_types=False)
        assert loaded == original

    def test_to_csv_text_round_trip(self):
        original = Table.from_rows(["a", "b"], [["x,y", "2"], ["", "3"]])
        text = to_csv_text(original)
        assert read_csv_text(text, infer_types=False) == original

    def test_write_without_header(self, tmp_path):
        table = Table.from_rows(["a"], [["1"], ["2"]])
        path = write_csv(table, tmp_path / "no_header.csv", header=False)
        assert path.read_text().strip().splitlines() == ["1", "2"]
