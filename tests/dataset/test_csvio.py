"""Tests for CSV input/output."""

import pytest

from repro.dataset.csvio import (
    iter_csv_chunks,
    read_csv,
    read_csv_sharded,
    read_csv_text,
    to_csv_text,
    write_csv,
)
from repro.dataset.schema import DataType
from repro.dataset.table import Table
from repro.errors import CsvFormatError

SAMPLE = "zip,city\n90001,Los Angeles\n90002,Los Angeles\n60601,Chicago\n"


class TestReadCsvText:
    def test_reads_header_and_rows(self):
        table = read_csv_text(SAMPLE)
        assert table.column_names() == ["zip", "city"]
        assert table.n_rows == 3
        assert table.cell(2, "city") == "Chicago"

    def test_type_inference_marks_zip_as_integer(self):
        table = read_csv_text(SAMPLE)
        assert table.schema["zip"].dtype is DataType.INTEGER
        assert table.schema["city"].dtype is DataType.STRING

    def test_type_inference_can_be_disabled(self):
        table = read_csv_text(SAMPLE, infer_types=False)
        assert table.schema["zip"].dtype is DataType.STRING

    def test_quoted_fields_with_commas(self):
        text = 'name,city\n"Smith, John",Boston\n'
        table = read_csv_text(text)
        assert table.cell(0, "name") == "Smith, John"

    def test_no_header_with_names(self):
        table = read_csv_text("1,2\n3,4\n", header=False, column_names=["a", "b"])
        assert table.n_rows == 2
        assert table.cell(0, "a") == "1"

    def test_no_header_without_names_is_an_error(self):
        with pytest.raises(CsvFormatError):
            read_csv_text("1,2\n", header=False)

    def test_ragged_row_is_an_error(self):
        with pytest.raises(CsvFormatError):
            read_csv_text("a,b\n1,2\n3\n")

    def test_duplicate_header_is_an_error(self):
        with pytest.raises(CsvFormatError):
            read_csv_text("a,a\n1,2\n")

    def test_empty_document_is_an_error(self):
        with pytest.raises(CsvFormatError):
            read_csv_text("")

    def test_alternative_delimiter(self):
        table = read_csv_text("a;b\n1;2\n", delimiter=";")
        assert table.cell(0, "b") == "2"

    def test_header_only_yields_zero_rows(self):
        table = read_csv_text("a,b\n")
        assert table.n_rows == 0


class TestRoundTrip:
    def test_write_and_read_file(self, tmp_path):
        original = read_csv_text(SAMPLE, infer_types=False)
        path = write_csv(original, tmp_path / "zips.csv")
        loaded = read_csv(path, infer_types=False)
        assert loaded == original

    def test_to_csv_text_round_trip(self):
        original = Table.from_rows(["a", "b"], [["x,y", "2"], ["", "3"]])
        text = to_csv_text(original)
        assert read_csv_text(text, infer_types=False) == original

    def test_write_without_header(self, tmp_path):
        table = Table.from_rows(["a"], [["1"], ["2"]])
        path = write_csv(table, tmp_path / "no_header.csv", header=False)
        assert path.read_text().strip().splitlines() == ["1", "2"]


class TestIterCsvChunks:
    def write(self, tmp_path, text: str):
        path = tmp_path / "doc.csv"
        path.write_text(text)
        return path

    def test_streams_fixed_size_chunks(self, tmp_path):
        path = self.write(tmp_path, "a,b\n" + "".join(f"{i},{i}\n" for i in range(10)))
        chunks = list(iter_csv_chunks(path, chunk_rows=4))
        assert [c.n_rows for c in chunks] == [4, 4, 2]
        assert all(c.column_names() == ["a", "b"] for c in chunks)
        assert chunks[2].cell(1, "a") == "9"

    def test_chunks_concatenate_to_the_monolithic_read(self, tmp_path):
        path = self.write(tmp_path, SAMPLE)
        merged = read_csv_sharded(path, shard_rows=2).to_table()
        assert merged == read_csv(path, infer_types=False)

    def test_header_only_yields_one_empty_chunk(self, tmp_path):
        path = self.write(tmp_path, "a,b\n")
        chunks = list(iter_csv_chunks(path, chunk_rows=3))
        assert [c.n_rows for c in chunks] == [0]
        assert chunks[0].column_names() == ["a", "b"]

    def test_short_row_is_rejected_with_its_line_number(self, tmp_path):
        path = self.write(tmp_path, "a,b\n1,2\n3\n4,5\n")
        with pytest.raises(CsvFormatError, match=r"line 3 has 1 fields, expected 2"):
            list(iter_csv_chunks(path, chunk_rows=10))

    def test_long_row_is_rejected_with_its_line_number(self, tmp_path):
        path = self.write(tmp_path, "a,b\n1,2\n3,4,5\n")
        with pytest.raises(CsvFormatError, match=r"line 3 has 3 fields, expected 2"):
            list(iter_csv_chunks(path, chunk_rows=10))

    def test_ragged_row_in_a_later_chunk_is_still_rejected(self, tmp_path):
        # earlier complete chunks stream out before the error surfaces
        path = self.write(tmp_path, "a,b\n1,2\n3,4\n5\n")
        stream = iter_csv_chunks(path, chunk_rows=2)
        first = next(stream)
        assert first.n_rows == 2
        with pytest.raises(CsvFormatError, match=r"line 4"):
            next(stream)

    def test_multi_line_quoted_record_reports_csv_line_number(self, tmp_path):
        # the bad record spans physical lines 4-5; the reader attributes
        # the error to the record's last physical line
        path = self.write(tmp_path, 'a,b\n"x\ny",2\n"p\nq"\n')
        with pytest.raises(CsvFormatError, match=r"line 5 has 1 fields"):
            list(iter_csv_chunks(path, chunk_rows=10))

    def test_empty_document_is_an_error(self, tmp_path):
        path = self.write(tmp_path, "")
        with pytest.raises(CsvFormatError, match="no rows"):
            list(iter_csv_chunks(path, chunk_rows=2))

    def test_duplicate_header_is_an_error(self, tmp_path):
        path = self.write(tmp_path, "a,a\n1,2\n")
        with pytest.raises(CsvFormatError, match="duplicate"):
            list(iter_csv_chunks(path, chunk_rows=2))

    def test_no_header_with_names_and_open_stream(self):
        import io

        stream = io.StringIO("1,2\n3,4\n5,6\n")
        chunks = list(
            iter_csv_chunks(stream, chunk_rows=2, header=False, column_names=["x", "y"])
        )
        assert [c.n_rows for c in chunks] == [2, 1]
        assert not stream.closed

    def test_invalid_chunk_rows_rejected(self, tmp_path):
        path = self.write(tmp_path, SAMPLE)
        with pytest.raises(CsvFormatError, match="chunk_rows"):
            list(iter_csv_chunks(path, chunk_rows=0))

    def test_read_csv_sharded_shard_layout(self, tmp_path):
        path = self.write(tmp_path, "a,b\n" + "".join(f"{i},{i}\n" for i in range(7)))
        sharded = read_csv_sharded(path, shard_rows=3)
        assert [s.n_rows for s in sharded.shards] == [3, 3, 1]
