"""Tests for the columnar Table."""

import pytest

from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.errors import TableError


class TestConstruction:
    def test_from_rows(self, mixed_table):
        assert mixed_table.n_rows == 5
        assert mixed_table.n_columns == 4
        assert mixed_table.column_names() == ["id", "name", "age", "city"]

    def test_from_rows_rejects_ragged_rows(self):
        with pytest.raises(TableError):
            Table.from_rows(["a", "b"], [["1", "2"], ["only-one"]])

    def test_column_count_must_match_schema(self):
        with pytest.raises(TableError):
            Table(Schema.of(["a", "b"]), [["1"]])

    def test_columns_must_have_equal_length(self):
        with pytest.raises(TableError):
            Table(["a", "b"], [["1", "2"], ["x"]])

    def test_from_dicts(self):
        table = Table.from_dicts([{"a": "1", "b": "2"}, {"a": "3"}])
        assert table.cell(1, "b") == ""
        assert table.n_rows == 2

    def test_from_dicts_rejects_unknown_keys(self):
        with pytest.raises(TableError):
            Table.from_dicts([{"a": "1"}, {"zzz": "2"}], schema=["a"])

    def test_from_dicts_needs_rows_or_schema(self):
        with pytest.raises(TableError):
            Table.from_dicts([])

    def test_empty_table(self):
        table = Table.empty(["a", "b"])
        assert table.n_rows == 0
        assert list(table.iter_rows()) == []

    def test_values_are_stringified(self):
        table = Table.from_rows(["n", "f"], [[1, 2.0], [None, 3.5]])
        assert table.cell(0, "n") == "1"
        assert table.cell(0, "f") == "2"
        assert table.cell(1, "n") == ""
        assert table.cell(1, "f") == "3.5"


class TestAccess:
    def test_cell_and_row(self, mixed_table):
        assert mixed_table.cell(0, "name") == "Alice Smith"
        assert mixed_table.row(1) == ("2", "Bob Jones", "28", "Boston")
        assert mixed_table.row_dict(2)["city"] == "Chicago"

    def test_out_of_range_row(self, mixed_table):
        with pytest.raises(TableError):
            mixed_table.cell(99, "name")

    def test_column_returns_copy(self, mixed_table):
        column = mixed_table.column("city")
        column[0] = "MUTATED"
        assert mixed_table.cell(0, "city") == "Boston"

    def test_iter_dicts(self, mixed_table):
        dicts = list(mixed_table.iter_dicts())
        assert len(dicts) == 5
        assert dicts[0]["id"] == "1"

    def test_len(self, mixed_table):
        assert len(mixed_table) == 5


class TestTransformations:
    def test_select(self, mixed_table):
        selected = mixed_table.select(["city", "name"])
        assert selected.column_names() == ["city", "name"]
        assert selected.row(0) == ("Boston", "Alice Smith")

    def test_filter(self, mixed_table):
        chicago = mixed_table.filter(lambda row: row["city"] == "Chicago")
        assert chicago.n_rows == 2

    def test_take_and_head(self, mixed_table):
        assert mixed_table.take([4, 0]).column("id") == ["5", "1"]
        assert mixed_table.head(2).n_rows == 2
        assert mixed_table.head(100).n_rows == 5

    def test_take_out_of_range(self, mixed_table):
        with pytest.raises(TableError):
            mixed_table.take([99])

    def test_concat(self, mixed_table):
        doubled = mixed_table.concat(mixed_table)
        assert doubled.n_rows == 10

    def test_concat_requires_same_columns(self, mixed_table):
        other = Table.from_rows(["x"], [["1"]])
        with pytest.raises(TableError):
            mixed_table.concat(other)

    def test_with_column(self, mixed_table):
        extended = mixed_table.with_column("country", ["US"] * 5)
        assert extended.column("country") == ["US"] * 5
        with pytest.raises(TableError):
            mixed_table.with_column("bad", ["only-one"])

    def test_rename(self, mixed_table):
        renamed = mixed_table.rename({"city": "town"})
        assert "town" in renamed.column_names()
        assert "city" not in renamed.column_names()

    def test_copy_is_independent(self, mixed_table):
        copy = mixed_table.copy()
        copy.set_cell(0, "city", "XXX")
        assert mixed_table.cell(0, "city") == "Boston"

    def test_with_schema_requires_same_width(self, mixed_table):
        with pytest.raises(TableError):
            mixed_table.with_schema(Schema.of(["just-one"]))


class TestMutationAndAnalytics:
    def test_set_cell(self, mixed_table):
        table = mixed_table.copy()
        table.set_cell(0, "city", "Denver")
        assert table.cell(0, "city") == "Denver"

    def test_distinct(self, mixed_table):
        assert mixed_table.distinct("city") == ["Boston", "Chicago", "Seattle"]

    def test_value_counts(self, mixed_table):
        counts = mixed_table.value_counts("city")
        assert counts == {"Boston": 2, "Chicago": 2, "Seattle": 1}

    def test_group_rows(self, mixed_table):
        groups = mixed_table.group_rows("city")
        assert groups["Boston"] == [0, 1]

    def test_equality(self, mixed_table):
        assert mixed_table == mixed_table.copy()
        assert mixed_table != mixed_table.head(2)

    def test_to_text_contains_header_and_rows(self, mixed_table):
        text = mixed_table.to_text(max_rows=2)
        assert "city" in text
        assert "Alice Smith" in text
        assert "more rows" in text
