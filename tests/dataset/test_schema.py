"""Tests for Schema and Attribute."""

import pytest

from repro.dataset.schema import Attribute, DataType, Schema
from repro.errors import SchemaError


class TestAttribute:
    def test_defaults(self):
        attr = Attribute("city")
        assert attr.dtype is DataType.STRING
        assert attr.nullable

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_bad_dtype_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("x", dtype="string")

    def test_with_dtype(self):
        attr = Attribute("age").with_dtype(DataType.INTEGER)
        assert attr.dtype is DataType.INTEGER
        assert attr.name == "age"

    def test_is_numeric(self):
        assert DataType.INTEGER.is_numeric
        assert DataType.FLOAT.is_numeric
        assert not DataType.STRING.is_numeric
        assert not DataType.BOOLEAN.is_numeric


class TestSchema:
    def test_of_names(self):
        schema = Schema.of(["zip", "city"])
        assert schema.names() == ["zip", "city"]
        assert len(schema) == 2

    def test_mixed_construction(self):
        schema = Schema.of(["zip", Attribute("city", DataType.STRING)])
        assert schema.names() == ["zip", "city"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(["a", "b", "a"])

    def test_unknown_attribute_type_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of([42])

    def test_contains(self):
        schema = Schema.of(["zip", "city"])
        assert "zip" in schema
        assert Attribute("city") in schema
        assert "state" not in schema

    def test_getitem_by_index_and_name(self):
        schema = Schema.of(["zip", "city"])
        assert schema[0].name == "zip"
        assert schema["city"].name == "city"

    def test_getitem_unknown_name(self):
        with pytest.raises(SchemaError):
            Schema.of(["zip"])["nope"]

    def test_index_of(self):
        schema = Schema.of(["zip", "city"])
        assert schema.index_of("city") == 1
        assert schema.index_of(Attribute("zip")) == 0
        with pytest.raises(SchemaError):
            schema.index_of("state")

    def test_select_preserves_order_given(self):
        schema = Schema.of(["a", "b", "c"])
        assert schema.select(["c", "a"]).names() == ["c", "a"]

    def test_with_attribute(self):
        schema = Schema.of(["a"]).with_attribute("b")
        assert schema.names() == ["a", "b"]

    def test_with_dtypes(self):
        schema = Schema.of(["a", "b"]).with_dtypes([DataType.INTEGER, DataType.STRING])
        assert schema["a"].dtype is DataType.INTEGER
        with pytest.raises(SchemaError):
            schema.with_dtypes([DataType.STRING])

    def test_dtype_of(self):
        schema = Schema.of([Attribute("a", DataType.FLOAT)])
        assert schema.dtype_of("a") is DataType.FLOAT

    def test_equality(self):
        assert Schema.of(["a", "b"]) == Schema.of(["a", "b"])
        assert Schema.of(["a"]) != Schema.of(["b"])

    def test_iteration(self):
        names = [attr.name for attr in Schema.of(["x", "y"])]
        assert names == ["x", "y"]
