"""Tests for column type inference."""

from repro.dataset.inference import infer_column_type, infer_schema
from repro.dataset.schema import DataType
from repro.dataset.table import Table


class TestInferColumnType:
    def test_integers(self):
        assert infer_column_type(["1", "42", "-7", "+3"]) is DataType.INTEGER

    def test_floats(self):
        assert infer_column_type(["1.5", "2.0", "-0.25"]) is DataType.FLOAT

    def test_integers_plus_floats_are_float(self):
        assert infer_column_type(["1", "2.5"]) is DataType.FLOAT

    def test_booleans(self):
        assert infer_column_type(["true", "False", "YES", "no"]) is DataType.BOOLEAN

    def test_strings(self):
        assert infer_column_type(["Chicago", "Boston"]) is DataType.STRING

    def test_single_outlier_demotes_to_string(self):
        assert infer_column_type(["1", "2", "x"]) is DataType.STRING

    def test_threshold_allows_some_outliers(self):
        values = ["1"] * 95 + ["oops"] * 5
        assert infer_column_type(values, threshold=0.9) is DataType.INTEGER

    def test_empty_column(self):
        assert infer_column_type(["", "  ", ""]) is DataType.EMPTY

    def test_empty_values_are_ignored(self):
        assert infer_column_type(["1", "", "2"]) is DataType.INTEGER

    def test_zip_codes_look_like_integers(self):
        # This is why candidate pruning needs the "looks like a code"
        # escape hatch: plain inference sees digits only.
        assert infer_column_type(["90001", "60601"]) is DataType.INTEGER


class TestInferSchema:
    def test_assigns_types_per_column(self):
        table = Table.from_rows(
            ["name", "age", "score", "active"],
            [
                ["Alice", "34", "1.5", "yes"],
                ["Bob", "28", "2.25", "no"],
            ],
        )
        schema = infer_schema(table)
        assert schema["name"].dtype is DataType.STRING
        assert schema["age"].dtype is DataType.INTEGER
        assert schema["score"].dtype is DataType.FLOAT
        assert schema["active"].dtype is DataType.BOOLEAN

    def test_preserves_names_and_order(self, mixed_table):
        schema = infer_schema(mixed_table)
        assert schema.names() == mixed_table.column_names()
