"""Tests for the column profiler (the Figure 3 backend)."""

import pytest

from repro.dataset.profiling import (
    ColumnProfileBuilder,
    profile_column,
    profile_sharded,
    profile_table,
)
from repro.dataset.schema import DataType
from repro.dataset.table import Table


class TestProfileColumn:
    def test_basic_statistics(self):
        profile = profile_column("zip", ["90001", "90002", "90001", ""])
        assert profile.n_values == 4
        assert profile.n_empty == 1
        assert profile.n_distinct == 3  # two zips + the empty string
        assert profile.min_length == 5
        assert profile.max_length == 5
        assert profile.avg_length == pytest.approx(5.0)

    def test_value_patterns(self):
        profile = profile_column("zip", ["90001", "90002", "abc"])
        top = profile.value_patterns[0]
        assert top.pattern_text == "\\D{5}"
        assert top.frequency == 2
        assert top.ratio == pytest.approx(2 / 3)
        assert top.position == 0

    def test_render_format_matches_gui(self):
        profile = profile_column("zip", ["90001", "90002"])
        assert profile.value_patterns[0].render() == "\\D{5}::0, 2"

    def test_token_patterns_have_positions(self):
        profile = profile_column(
            "full_name", ["Holloway, Donald E.", "Jones, Stacey R."]
        )
        positions = {p.position for p in profile.token_patterns}
        assert positions == {0, 1, 2}

    def test_single_token_detection(self):
        codes = profile_column("zip", ["90001", "90002"])
        names = profile_column("name", ["John Smith", "Jane Doe"])
        assert codes.is_single_token
        assert not names.is_single_token

    def test_distinct_ratio(self):
        profile = profile_column("x", ["a", "a", "b", ""])
        assert profile.distinct_ratio == pytest.approx(2 / 3)

    def test_empty_column(self):
        profile = profile_column("x", ["", ""])
        assert profile.dtype is DataType.EMPTY
        assert profile.distinct_ratio == 0.0
        assert profile.value_patterns == []

    def test_dominant_value_patterns_threshold(self):
        values = ["90001"] * 9 + ["x"]
        profile = profile_column("zip", values)
        dominant = profile.dominant_value_patterns(min_ratio=0.5)
        assert [p.pattern_text for p in dominant] == ["\\D{5}"]


class TestProfileTable:
    def test_profiles_every_column(self, mixed_table):
        profile = profile_table(mixed_table)
        assert set(profile.column_names()) == set(mixed_table.column_names())
        assert profile.n_rows == mixed_table.n_rows
        assert profile["age"].dtype is DataType.INTEGER

    def test_candidate_columns_exclude_plain_numeric_measures(self):
        table = Table.from_rows(
            ["measure", "city"],
            [[str(i * 17 % 997), "Boston"] for i in range(50)],
        )
        profile = profile_table(table)
        candidates = profile.pfd_candidate_columns()
        assert "city" in candidates
        assert "measure" not in candidates

    def test_candidate_columns_keep_code_like_numeric_columns(self, small_zip_city_state):
        profile = profile_table(small_zip_city_state.table)
        candidates = profile.pfd_candidate_columns()
        assert "zip" in candidates
        assert "city" in candidates
        assert "state" in candidates

    def test_candidate_columns_drop_free_text_keys(self):
        import random

        rng = random.Random(3)
        alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJ 0123456789-"
        rows = []
        for i in range(60):
            text = "".join(rng.choice(alphabet) for _ in range(rng.randint(5, 30)))
            rows.append([text, "constant"])
        table = Table.from_rows(["free_text", "group"], rows)
        profile = profile_table(table)
        assert "free_text" not in profile.pfd_candidate_columns()

    def test_iteration_and_getitem(self, mixed_table):
        profile = profile_table(mixed_table)
        assert {c.name for c in profile} == set(mixed_table.column_names())
        assert profile["city"].name == "city"


class TestStreamingProfile:
    """The shard-major streaming profiler must equal the monolithic one
    field for field — it is the same computation fed counts instead of
    value lists."""

    def awkward_table(self):
        return Table.from_rows(
            ["zip", "city", "blank", "padded", "num"],
            [
                ["90001", "Los Angeles", "", "  x  ", "1"],
                ["90002", "Los Angeles", "", "\t", "2"],
                ["", "New York", "", "x", "3"],
                ["10001", "New York", "", "", "-4"],
                ["10001", "Boston", "", "  x  ", "5.5"],
            ],
        )

    @pytest.mark.parametrize("shard_rows", [1, 2, 5])
    def test_identical_to_monolithic(self, shard_rows):
        from repro.sharding import ShardedTable

        table = self.awkward_table()
        sharded = ShardedTable.from_table(table, shard_rows)
        assert profile_sharded(sharded) == profile_table(table)

    def test_identical_on_mixed_table(self, mixed_table):
        from repro.sharding import ShardedTable

        sharded = ShardedTable.from_table(mixed_table, 3)
        assert profile_sharded(sharded) == profile_table(mixed_table)

    def test_builder_incremental_equals_one_shot(self):
        values = ["90001", "90002", "", "abc", "90001"]
        builder = ColumnProfileBuilder("zip")
        for value in values:
            builder.add([value])
        assert builder.finish() == profile_column("zip", values)

    def test_zero_row_sharded_table(self):
        from repro.sharding import ShardedTable

        table = Table.empty(["a", "b"])
        sharded = ShardedTable.from_table(table, 4)
        assert profile_sharded(sharded) == profile_table(table)
