"""Integration tests that retrace the paper's narrative end to end.

These tests tie the subsystems together: the running example of the
introduction (Tables 1 and 2, λ1–λ5), the Table 3 scenarios on the
synthetic stand-in datasets, and the headline claim that PFDs catch
errors FDs and CFDs cannot.
"""

import pytest

from repro.baselines.cfd_discovery import discover_constant_cfds
from repro.baselines.fd_detection import detect_cfd_violations, detect_fd_violations
from repro.baselines.fd_discovery import FdDiscoveryConfig, discover_fds
from repro.baselines.pattern_outliers import PatternOutlierDetector
from repro.datagen import build_dataset
from repro.detection.detector import ErrorDetector
from repro.discovery.config import DiscoveryConfig
from repro.discovery.discoverer import PfdDiscoverer
from repro.metrics.evaluation import evaluate_report


class TestIntroductionExample:
    """The D1/D2 four-row tables with the r4/s4 errors."""

    def test_discovered_pfds_on_d2_find_the_zip_rule(self, zip_dataset):
        config = DiscoveryConfig(min_coverage=0.5, allowed_violation_ratio=0.3, min_support=2)
        result = PfdDiscoverer(config).discover_with_report(zip_dataset.table)
        assert result.pfds, "discovery must find a zip -> city dependency on Table 2"
        report = ErrorDetector(zip_dataset.table).detect_all(result.pfds)
        assert (3, "city") in report.suspect_cells()

    def test_discovered_pfds_on_d1_find_the_gender_rule(self, name_dataset):
        config = DiscoveryConfig(min_coverage=0.4, allowed_violation_ratio=0.3, min_support=2)
        result = PfdDiscoverer(config).discover_with_report(name_dataset.table)
        report = ErrorDetector(name_dataset.table).detect_all(result.pfds)
        # With only one clean Susan row the engine cannot know which of
        # r3/r4 is wrong, but the violation must involve r4's gender cell —
        # exactly the four-cell violation the paper describes.
        assert (3, "gender") in report.involved_cells()
        assert (2, "gender") in report.involved_cells()


@pytest.mark.parametrize(
    "dataset_name,lhs,rhs",
    [
        ("phone_state", "phone_number", "state"),
        ("fullname_gender", "full_name", "gender"),
        ("zip_city_state", "zip", "city"),
        ("zip_city_state", "zip", "state"),
    ],
)
class TestTable3Scenarios:
    """Each Table 3 dependency is re-discovered and its errors detected."""

    def test_dependency_discovered_and_errors_found(self, dataset_name, lhs, rhs):
        dataset = build_dataset(dataset_name, n_rows=600, seed=17)
        result = PfdDiscoverer().discover_with_report(dataset.table)
        pfds = result.pfds_for(lhs, rhs)
        assert pfds, f"expected a PFD for {lhs} -> {rhs}"
        report = ErrorDetector(dataset.table).detect_all(pfds)
        truth = {
            (row, attr) for row, attr in dataset.error_cells if attr == rhs
        }
        evaluation = evaluate_report(report, truth)
        assert evaluation.recall >= 0.75, (dataset_name, lhs, rhs, evaluation)


class TestHeadlineClaim:
    """PFDs detect errors existing approaches cannot (the E10 comparison)."""

    @pytest.fixture(scope="class")
    def phone_dataset(self):
        return build_dataset("phone_state", n_rows=800, seed=23, error_rate=0.02)

    def test_fd_and_cfd_miss_unique_lhs_errors(self, phone_dataset):
        table = phone_dataset.table
        fds = [d.fd for d in discover_fds(table, FdDiscoveryConfig(max_lhs_size=1))]
        fd_report = detect_fd_violations(table, fds)
        cfd_report = detect_cfd_violations(table, discover_constant_cfds(table))
        truth = phone_dataset.error_cells
        assert evaluate_report(fd_report, truth).recall == 0.0
        assert evaluate_report(cfd_report, truth).recall == 0.0

    def test_pattern_outliers_miss_well_formed_errors(self, phone_dataset):
        report = PatternOutlierDetector().detect(phone_dataset.table, columns=["state"])
        assert evaluate_report(report, phone_dataset.error_cells).recall == 0.0

    def test_pfds_catch_most_of_them(self, phone_dataset):
        result = PfdDiscoverer().discover_with_report(phone_dataset.table)
        report = ErrorDetector(phone_dataset.table).detect_all(result.pfds)
        evaluation = evaluate_report(report, phone_dataset.error_cells)
        assert evaluation.recall >= 0.9
        assert evaluation.precision >= 0.5


class TestParameterTradeoff:
    """Section 4: lower coverage / higher tolerance → more dependencies."""

    def test_lower_coverage_reports_more_dependencies(self):
        dataset = build_dataset("zip_city_state", n_rows=600, seed=5)
        low = PfdDiscoverer(DiscoveryConfig(min_coverage=0.2)).discover(dataset.table)
        high = PfdDiscoverer(DiscoveryConfig(min_coverage=0.95)).discover(dataset.table)
        assert len(low) >= len(high)

    def test_higher_tolerance_never_reduces_dependencies(self):
        dataset = build_dataset("zip_city_state", n_rows=600, seed=5)
        tolerant = PfdDiscoverer(
            DiscoveryConfig(allowed_violation_ratio=0.2)
        ).discover(dataset.table)
        strict = PfdDiscoverer(
            DiscoveryConfig(allowed_violation_ratio=0.0)
        ).discover(dataset.table)
        assert len(tolerant) >= len(strict)


class TestRepairLoop:
    def test_detect_and_repair_recovers_clean_values(self):
        from repro.detection.repair import apply_repairs, suggest_repairs

        dataset = build_dataset("phone_state", n_rows=600, seed=29, error_rate=0.02)
        result = PfdDiscoverer().discover_with_report(dataset.table)
        report = ErrorDetector(dataset.table).detect_all(result.pfds)
        repaired = apply_repairs(dataset.table, suggest_repairs(report), min_confidence=0.5)
        fixed = sum(
            1
            for row, attr in dataset.error_cells
            if repaired.cell(row, attr) == dataset.clean_table.cell(row, attr)
        )
        assert fixed / max(1, len(dataset.error_cells)) >= 0.8
