"""Property-based integration tests across the detection engine.

Invariants:

* all detection strategies (scan, index, brute force) flag the same
  suspect rows for the same PFD;
* detection on the clean table of a generated dataset finds nothing for
  PFDs discovered from the clean table;
* every suspect cell reported for a constant PFD really fails the rule it
  is reported against.
"""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st

from repro.constrained.constrained_pattern import constrained_prefix
from repro.dataset.table import Table
from repro.detection.detector import DetectionStrategy, ErrorDetector
from repro.discovery.config import DiscoveryConfig
from repro.discovery.discoverer import PfdDiscoverer
from repro.patterns import parse_pattern
from repro.pfd.pfd import PFD
from repro.pfd.satisfaction import find_tableau_violations
from repro.pfd.tableau import cell_matches

#: Small synthetic zip→city worlds: a few prefixes, a few cities.
PREFIXES = ["606", "607", "900", "941", "100"]
CITIES = ["Chicago", "Los Angeles", "New York", "San Francisco"]


@st.composite
def zip_city_tables(draw):
    """A random zip/city table where prefixes *mostly* determine cities."""
    mapping = {
        prefix: draw(st.sampled_from(CITIES)) for prefix in PREFIXES
    }
    n_rows = draw(st.integers(min_value=4, max_value=40))
    rows = []
    for _ in range(n_rows):
        prefix = draw(st.sampled_from(PREFIXES))
        suffix = draw(st.integers(min_value=0, max_value=99))
        city = mapping[prefix]
        if draw(st.integers(min_value=0, max_value=9)) == 0:
            city = draw(st.sampled_from(CITIES))  # occasional error
        rows.append([f"{prefix}{suffix:02d}", city])
    return Table.from_rows(["zip", "city"], rows)


ZIP_PFD = PFD.variable(
    "zip",
    "city",
    constrained_prefix(3, parse_pattern("\\D{2}"), head=parse_pattern("\\D{3}")),
    name="lambda5",
)


@settings(max_examples=40, deadline=None)
@given(zip_city_tables())
def test_strategies_flag_the_same_rows(table):
    detector = ErrorDetector(table)
    scan = detector.detect(ZIP_PFD, strategy=DetectionStrategy.SCAN)
    index = detector.detect(ZIP_PFD, strategy=DetectionStrategy.INDEX)
    brute = detector.detect(ZIP_PFD, strategy=DetectionStrategy.BRUTEFORCE)
    # every strategy emits through the same shared rule evaluators —
    # only candidate enumeration differs — so all three reports must
    # carry identical violations
    assert scan.suspect_cells() == index.suspect_cells()
    assert scan.canonical_violations() == index.canonical_violations()
    assert brute.canonical_violations() == index.canonical_violations()


@settings(max_examples=40, deadline=None)
@given(zip_city_tables())
def test_detector_agrees_with_reference_semantics(table):
    detector = ErrorDetector(table)
    reference = find_tableau_violations(table, ZIP_PFD)
    reference_rows = set(reference.violating_rows)
    # the blocking strategy's suspects are always part of a reference violation
    blocked = detector.detect(ZIP_PFD)
    blocked_rows = {row for violation in blocked for row in violation.rows}
    assert blocked_rows <= reference_rows
    assert bool(blocked_rows) == bool(reference_rows)
    # the brute-force strategy enumerates exactly the reference pairs,
    # then emits through the shared evaluator: its violations are the
    # blocking strategy's, and its witness/suspect rows all come from
    # reference pairs
    brute = detector.detect(ZIP_PFD, strategy=DetectionStrategy.BRUTEFORCE)
    assert brute.canonical_violations() == blocked.canonical_violations()
    reference_pairs = {(i, j) for i, j, _rule in reference.variable_violations}
    reference_pair_rows = {row for pair in reference_pairs for row in pair}
    brute_rows = {row for violation in brute for row in violation.rows}
    assert brute_rows <= reference_pair_rows
    assert bool(brute_rows) == bool(reference_pairs)


@settings(max_examples=25, deadline=None)
@given(zip_city_tables())
def test_constant_violations_really_violate_their_rule(table):
    config = DiscoveryConfig(min_coverage=0.3, min_support=2)
    pfds = PfdDiscoverer(config).discover(table)
    detector = ErrorDetector(table)
    for pfd in pfds:
        if not pfd.is_constant:
            continue
        for violation in detector.detect(pfd):
            rule = pfd.tableau[violation.rule_index]
            row = violation.suspect_cell[0]
            lhs_value = table.cell(row, pfd.lhs_attribute)
            rhs_value = table.cell(row, pfd.rhs_attribute)
            assert cell_matches(rule.cell(pfd.lhs_attribute), lhs_value)
            assert not cell_matches(rule.cell(pfd.rhs_attribute), rhs_value)


@settings(max_examples=15, deadline=None)
@given(zip_city_tables())
def test_discovered_pfds_respect_tolerance_on_their_own_table(table):
    """A PFD discovered with zero tolerance cannot be heavily violated by
    the very table it was mined from."""
    config = DiscoveryConfig(
        min_coverage=0.3, allowed_violation_ratio=0.0, min_support=2
    )
    pfds = PfdDiscoverer(config).discover(table)
    detector = ErrorDetector(table)
    for pfd in pfds:
        if not pfd.is_constant:
            continue
        report = detector.detect(pfd)
        assert len(report.suspect_rows()) / max(1, table.n_rows) <= 0.5
