#!/usr/bin/env python3
"""Structured identifiers: knowledge discovery from employee IDs.

The introduction's motivating example: in an employee table, the ID
"F-9-107" encodes that "F" determines the financial department and "9"
determines the grade.  This example generates such a table (standing in
for the anonymized MIT / company warehouses of the demo), discovers the
embedded meta-knowledge automatically, and uses it to flag records whose
department or grade disagrees with their ID.

Run with::

    python examples/employee_ids.py
"""

from repro.datagen import generate_employee_ids
from repro.detection import ErrorDetector
from repro.discovery import DiscoveryConfig, PfdDiscoverer
from repro.metrics import evaluate_report


def main() -> None:
    dataset = generate_employee_ids(n_rows=1500, seed=31)
    print(f"Dataset: {dataset.description}")
    print(dataset.table.head(5).to_text(), "\n")

    discoverer = PfdDiscoverer(DiscoveryConfig(min_coverage=0.7, allowed_violation_ratio=0.05))
    result = discoverer.discover_with_report(dataset.table, relation="Employees")

    print("=== Discovered meta-knowledge ===")
    for pfd in result.pfds:
        print(f"\n{pfd.name}: {pfd.lhs_attribute} → {pfd.rhs_attribute} ({pfd.kind.value})")
        print(pfd.tableau.render())

    print("\n=== Error detection ===")
    detector = ErrorDetector(dataset.table)
    report = detector.detect_all(result.pfds)
    print(f"{len(report)} violations, {len(report.suspect_cells())} suspect cells")
    for violation in report.violations[:8]:
        row = violation.suspect_cell[0]
        print(
            f"  row {row}: id={dataset.table.cell(row, 'employee_id')} "
            f"{violation.rhs_attribute}={violation.observed_value!r} "
            f"(expected {violation.expected_value!r})"
        )

    evaluation = evaluate_report(report, dataset.error_cells)
    print(
        f"\nAgainst injected ground truth: precision={evaluation.precision:.3f} "
        f"recall={evaluation.recall:.3f} f1={evaluation.f1:.3f}"
    )


if __name__ == "__main__":
    main()
