#!/usr/bin/env python3
"""Sharded, out-of-core discovery and detection, end to end.

This walkthrough writes a synthetic dirty dataset to a CSV file, streams
it back in bounded-memory chunks straight into a spill-to-disk
``ShardStore`` (the whole document is never parsed in one piece, and the
shard copies live on disk behind a small LRU; the session never
materializes a monolithic table — profiling, detection, and the edit
loop all go through a ``ShardOverlay`` over the store), then
runs discovery and detection through the session layer.  The session routes everything through the
pluggable execution engine: the planner resolves each run into an
``ExecutionPlan`` (printed below, like ``anmat --explain-plan``) and the
sharded executor backend runs it.  A monolithic run verifies the
engine's contract — identical rule sets, canonically equal violations
(see docs/ARCHITECTURE.md).

Run with::

    PYTHONPATH=src python examples/sharded_run.py
"""

import tempfile
from pathlib import Path

from repro.anmat.session import AnmatSession
from repro.datagen import generate_zip_city_state
from repro.dataset.csvio import write_csv
from repro.discovery.config import DiscoveryConfig
from repro.sharding import SpillToDiskShardStore

SHARD_ROWS = 500


def main() -> None:
    dataset = generate_zip_city_state(n_rows=4000, seed=11)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "zips.csv"
        write_csv(dataset.table, path)
        print(f"wrote {dataset.table.n_rows} rows "
              f"({len(dataset.error_cells)} injected errors) to {path.name}\n")

        # -- stream the CSV chunk-wise into an on-disk shard store --------
        session = AnmatSession(
            dataset_name="zips",
            config=DiscoveryConfig(shard_rows=SHARD_ROWS),
        )
        store = SpillToDiskShardStore(Path(tmp) / "shards")
        session.upload_csv(path, store=store)
        print(f"streamed into {store.n_shards} shards of <= {SHARD_ROWS} rows, "
              f"spilled to {store.directory.name}/ (peak parse memory: one shard)")

        # -- the engine plans, the sharded backend executes ----------------
        print()
        print(session.plan_discovery().describe())
        session.run_discovery()
        session.confirm_all()
        print(session.plan_detection().describe())
        report = session.run_detection()
        print(f"\nsharded run: {len(session.discovered_pfds())} PFDs, "
              f"{len(report)} violations over {len(report.suspect_rows())} "
              f"suspect rows (strategy={report.strategy})")

        # -- the contract: identical to a monolithic run ------------------
        # (the sharded session's ``table`` is a ShardOverlay; materialize
        # an eager copy only for this comparison run)
        monolithic = AnmatSession(dataset_name="zips")
        monolithic.load_table(session.table.materialize())
        monolithic.run_discovery()
        monolithic.confirm_all()
        mono_report = monolithic.run_detection()
        print(f"monolithic run planned as: backend={monolithic.last_plan.backend}")

        same_rules = [p.describe() for p in session.discovered_pfds()] == [
            p.describe() for p in monolithic.discovered_pfds()
        ]
        same_violations = (
            report.canonical_violations() == mono_report.canonical_violations()
        )
        print(f"\nidentical rule set:       {same_rules}")
        print(f"canonically equal output: {same_violations}")
        assert same_rules and same_violations

        # -- the edit loop still works after a sharded run ----------------
        suggestions = session.repair_suggestions()
        if suggestions:
            session.apply_repair(suggestions[0])
            print(f"\napplied one repair through the overlay edit loop "
                  f"→ {len(session.violations)} violations remain; the next "
                  f"full re-check reads the patched shards through the overlay")


if __name__ == "__main__":
    main()
