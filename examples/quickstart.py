#!/usr/bin/env python3
"""Quickstart: the paper's running example (Tables 1 and 2, λ1–λ5).

Builds the two four-row tables from the introduction, defines the five
PFDs λ1–λ5 by hand, checks which of them detect the planted errors
(r4[gender] and s4[city]), and then shows that ANMAT discovers
equivalent rules automatically from the dirty data alone.

Run with::

    python examples/quickstart.py
"""

from repro import PFD, Table
from repro.constrained import constrained_first_token, constrained_prefix
from repro.detection import ErrorDetector
from repro.discovery import DiscoveryConfig, PfdDiscoverer
from repro.patterns import parse_pattern


def build_tables():
    """Tables 1 and 2 of the paper, including their erroneous cells."""
    name_table = Table.from_rows(
        ["name", "gender"],
        [
            ["John Charles", "M"],
            ["John Bosco", "M"],
            ["Susan Orlean", "F"],
            ["Susan Boyle", "M"],  # r4[gender] — should be F
        ],
    )
    zip_table = Table.from_rows(
        ["zip", "city"],
        [
            ["90001", "Los Angeles"],
            ["90002", "Los Angeles"],
            ["90003", "Los Angeles"],
            ["90004", "New York"],  # s4[city] — should be Los Angeles
        ],
    )
    return name_table, zip_table


def paper_lambdas():
    """λ1–λ5 written exactly as in the introduction."""
    lambda1 = PFD.constant(
        "name", "gender", [{"name": "John\\ \\A*", "gender": "M"}],
        name="lambda1", relation="Name",
    )
    lambda2 = PFD.constant(
        "name", "gender", [{"name": "Susan\\ \\A*", "gender": "F"}],
        name="lambda2", relation="Name",
    )
    lambda3 = PFD.constant(
        "zip", "city", [{"zip": "900\\D{2}", "city": "Los Angeles"}],
        name="lambda3", relation="Zip",
    )
    lambda4 = PFD.variable(
        "name", "gender", constrained_first_token(), name="lambda4", relation="Name"
    )
    lambda5 = PFD.variable(
        "zip", "city",
        constrained_prefix(3, parse_pattern("\\D{2}"), head=parse_pattern("\\D{3}")),
        name="lambda5", relation="Zip",
    )
    return lambda1, lambda2, lambda3, lambda4, lambda5


def main() -> None:
    name_table, zip_table = build_tables()
    lambda1, lambda2, lambda3, lambda4, lambda5 = paper_lambdas()

    print("=== The five PFDs of the introduction ===")
    for pfd in (lambda1, lambda2, lambda3, lambda4, lambda5):
        print(" ", pfd.describe())

    print("\n=== Error detection with the hand-written PFDs ===")
    name_detector = ErrorDetector(name_table)
    zip_detector = ErrorDetector(zip_table)
    for pfd, detector in (
        (lambda1, name_detector),
        (lambda2, name_detector),
        (lambda4, name_detector),
        (lambda3, zip_detector),
        (lambda5, zip_detector),
    ):
        report = detector.detect(pfd)
        cells = sorted(report.suspect_cells()) or "none"
        print(f"  {pfd.name}: suspect cells = {cells}")

    print("\n=== Automatic discovery from the dirty Zip table ===")
    config = DiscoveryConfig(min_coverage=0.5, allowed_violation_ratio=0.3, min_support=2)
    discovered = PfdDiscoverer(config).discover(zip_table, relation="Zip")
    for pfd in discovered:
        print(" ", pfd.describe())
    report = ErrorDetector(zip_table).detect_all(discovered)
    print("  detected suspect cells:", sorted(report.suspect_cells()))


if __name__ == "__main__":
    main()
