#!/usr/bin/env python3
"""Why PFDs? — comparison against FDs, CFDs and pattern outliers.

Reproduces the paper's headline claim ("errors that are detected by PFDs
but cannot be captured by existing approaches") on the phone→state
dataset: phone numbers are unique, so classical FDs and constant CFDs
have nothing to group on, and the swapped states are syntactically valid
so single-column outlier detection stays silent; only the area-code
pattern dependency exposes them.

Run with::

    python examples/compare_baselines.py
"""

from repro.baselines import (
    PatternOutlierDetector,
    detect_cfd_violations,
    detect_fd_violations,
    discover_constant_cfds,
    discover_fds,
)
from repro.baselines.fd_discovery import FdDiscoveryConfig
from repro.datagen import generate_phone_state
from repro.detection import ErrorDetector
from repro.discovery import PfdDiscoverer
from repro.metrics import evaluate_report


def main() -> None:
    dataset = generate_phone_state(n_rows=2000, seed=11, error_rate=0.02)
    table = dataset.table
    truth = dataset.error_cells
    print(f"Dataset: {dataset.description}")
    print(f"Rows: {table.n_rows}, injected wrong-state cells: {len(truth)}\n")

    rows = []

    fds = [d.fd for d in discover_fds(table, FdDiscoveryConfig(max_lhs_size=1))]
    rows.append(("FD (TANE-style)", evaluate_report(detect_fd_violations(table, fds), truth)))

    cfds = discover_constant_cfds(table)
    rows.append(("CFD (constant rules)", evaluate_report(detect_cfd_violations(table, cfds), truth)))

    outliers = PatternOutlierDetector().detect(table)
    rows.append(("Pattern outliers (Auto-Detect-style)", evaluate_report(outliers, truth)))

    pfds = PfdDiscoverer().discover(table, relation="D1")
    pfd_report = ErrorDetector(table).detect_all(pfds)
    rows.append(("PFD (ANMAT)", evaluate_report(pfd_report, truth)))

    print(f"{'approach':38s} {'precision':>9s} {'recall':>7s} {'f1':>6s}")
    for name, evaluation in rows:
        print(
            f"{name:38s} {evaluation.precision:9.3f} {evaluation.recall:7.3f} "
            f"{evaluation.f1:6.3f}"
        )

    print("\nDiscovered PFD tableau (area code → state):")
    for pfd in pfds:
        if pfd.is_constant:
            print(pfd.tableau.render())
            break


if __name__ == "__main__":
    main()
