#!/usr/bin/env python3
"""The interactive edit loop: detect → repair → re-check, incrementally.

The ANMAT demo is interactive — after detection the user fixes cells and
immediately sees the updated violation list.  This walkthrough runs that
loop end to end on a synthetic zip/city/state dataset with injected
errors: discovery and confirmation as usual, then
``AnmatSession.apply_repair`` fixes one suspect cell at a time while an
incremental detector keeps the report current *without* re-scanning the
table (compare ``repro.perf.cache_stats()['table_artifacts']['patched']``
before and after — the cached column indexes are patched under the
edits, never rebuilt).

Run with::

    PYTHONPATH=src python examples/edit_loop.py
"""

from repro.anmat.session import AnmatSession, SessionState
from repro.datagen import generate_zip_city_state
from repro.detection import ErrorDetector


def main() -> None:
    dataset = generate_zip_city_state(n_rows=600, seed=11)
    print(f"dataset: {dataset.table.n_rows} rows, "
          f"{len(dataset.error_cells)} injected errors\n")

    # -- the usual upload → discover → confirm → detect workflow ---------
    session = AnmatSession(dataset_name="zips")
    session.load_table(dataset.table.copy())
    session.set_parameters(min_coverage=0.6, allowed_violation_ratio=0.05)
    session.run_discovery()
    session.confirm_all()
    report = session.run_detection()
    print(f"initial detection: {len(report)} violations over "
          f"{len(report.suspect_rows())} suspect rows")

    # -- the edit loop: apply suggestions until the report is clean -------
    round_number = 0
    while not session.violations.is_empty():
        suggestions = session.repair_suggestions()
        if not suggestions:
            break
        round_number += 1
        for suggestion in suggestions:
            session.apply_repair(suggestion)  # violations updated in place
        print(f"round {round_number}: applied {len(suggestions)} repairs "
              f"→ {len(session.violations)} violations remain "
              f"(state={session.state.value})")

    assert session.state is SessionState.EDITING

    # -- trust, but verify: a full re-detection agrees --------------------
    full = ErrorDetector(session.table.copy()).detect_all(session.confirmed_pfds())
    assert (session.violations.canonical_violations()
            == full.canonical_violations())
    print("\nfull re-detection confirms the incrementally maintained report")

    # a final full run returns the session to DETECTED
    session.run_detection()
    print(f"state after re-check: {session.state.value}; "
          f"repaired table differs from ground truth in "
          f"{sum(1 for cell in dataset.error_cells if session.table.cell(*cell) != dataset.clean_table.cell(*cell))} "
          f"of the injected error cells")


if __name__ == "__main__":
    main()
