#!/usr/bin/env python3
"""Profiling a dataset: the Figure 3 view for any CSV file.

Loads a CSV (or a built-in synthetic dataset when no path is given),
profiles every column, and prints the dominant syntactic patterns in the
GUI's ``pattern::position, frequency`` format plus the list of columns
the discovery algorithm would keep as PFD candidates.

Run with::

    python examples/profile_dataset.py [path/to/file.csv]
"""

import sys

from repro.anmat.report import render_profile
from repro.datagen import generate_zip_city_state
from repro.dataset import profile_table, read_csv


def main() -> None:
    if len(sys.argv) > 1:
        table = read_csv(sys.argv[1])
        source = sys.argv[1]
    else:
        table = generate_zip_city_state(n_rows=2000, seed=23).table
        source = "built-in zip_city_state dataset"

    print(f"Profiling {source}\n")
    profile = profile_table(table)
    print(render_profile(profile, max_patterns=5))

    candidates = profile.pfd_candidate_columns()
    print("\nColumns kept as PFD candidates:", ", ".join(candidates) or "(none)")
    for name in table.column_names():
        column = profile[name]
        print(
            f"  {name}: type={column.dtype.value}, distinct_ratio={column.distinct_ratio:.2f}, "
            f"single_token={column.is_single_token}, "
            f"dominant_signature={column.dominant_signature_ratio:.2f}"
        )


if __name__ == "__main__":
    main()
