#!/usr/bin/env python3
"""Census-style cleaning: the full ANMAT workflow on zip/city/state data.

This mirrors the demo scenario on the data.gov-style dataset (D5 in
Table 3): a dirty table of zip codes, cities and states is uploaded into
a project, profiled (Figure 3), PFDs are discovered (Figure 4), the user
confirms them, and error detection reports the violating records
(Figure 5).  Because the dataset is synthetic we can also score the
result against the injected ground truth.

Run with::

    python examples/census_cleaning.py
"""

import tempfile
from pathlib import Path

from repro.anmat import AnmatSession, ProjectStore
from repro.anmat.report import render_discovered_pfds, render_profile, render_violations
from repro.datagen import generate_zip_city_state
from repro.detection.repair import apply_repairs, suggest_repairs
from repro.discovery import DiscoveryConfig
from repro.metrics import evaluate_report


def main() -> None:
    dataset = generate_zip_city_state(n_rows=3000, seed=23)
    print(f"Dataset: {dataset.description}")
    print(f"Rows: {dataset.table.n_rows}, injected errors: {dataset.n_errors}\n")

    with tempfile.TemporaryDirectory() as workdir:
        store = ProjectStore(Path(workdir))
        project = store.create_project("census", description="data.gov-style cleaning")

        session = AnmatSession(
            dataset_name="zip_city_state",
            project=project,
            config=DiscoveryConfig(min_coverage=0.6, allowed_violation_ratio=0.05),
        )
        session.load_table(dataset.table)

        print("=== Step 1: profiling (Figure 3) ===")
        profile = session.run_profiling()
        print(render_profile(profile, max_patterns=3))

        print("\n=== Step 2: PFD discovery (Figure 4) ===")
        discovery = session.run_discovery()
        session.confirm_all()
        print(render_discovered_pfds(discovery, session.confirmed_names))

        print("\n=== Step 3: error detection (Figure 5) ===")
        violations = session.run_detection()
        print(render_violations(violations, dataset.table, max_rows=10))

        evaluation = evaluate_report(violations, dataset.error_cells)
        print(
            f"\nAgainst ground truth: precision={evaluation.precision:.3f} "
            f"recall={evaluation.recall:.3f} f1={evaluation.f1:.3f}"
        )

        print("\n=== Step 4: repair suggestions ===")
        suggestions = suggest_repairs(violations)
        for suggestion in suggestions[:10]:
            print(" ", suggestion.describe())
        repaired = apply_repairs(dataset.table, suggestions, min_confidence=0.5)
        recovered = sum(
            1
            for row, attr in dataset.error_cells
            if repaired.cell(row, attr) == dataset.clean_table.cell(row, attr)
        )
        print(f"\nRepairs recovered {recovered}/{dataset.n_errors} injected errors")
        print(f"Results persisted under the project store: {project.directory}")


if __name__ == "__main__":
    main()
