"""Ablation — the literal-prefix optimization of the pattern column index.

DESIGN.md calls out one implementation choice worth ablating: constant
PFD patterns usually start with a literal prefix (``850\\D{7}``,
``6060\\D``), which lets the column index answer lookups from a sorted
array by binary search instead of regex-testing every distinct value.
This benchmark measures constant-PFD detection with the index (prefix
bucketing + distinct-value matching) against the plain scan strategy and
reports how many candidate values each one had to regex-test.
"""

from repro.datagen import generate_phone_state
from repro.detection import DetectionStrategy, ErrorDetector
from repro.discovery import PfdDiscoverer

from conftest import print_table


def detect_constant(table, pfds, strategy):
    detector = ErrorDetector(table)
    report = None
    for pfd in pfds:
        partial = detector.detect(pfd, strategy=strategy)
        report = partial if report is None else report.merged_with(partial)
    return report


def test_index_prefix_ablation(benchmark, phone_dataset):
    table = phone_dataset.table
    pfds = [p for p in PfdDiscoverer().discover(table) if p.is_constant]
    assert pfds

    indexed = benchmark.pedantic(
        detect_constant, args=(table, pfds, DetectionStrategy.INDEX), rounds=2, iterations=1
    )
    scanned = detect_constant(table, pfds, DetectionStrategy.SCAN)

    rows = [
        ("index (prefix bucketing)", indexed.comparisons, len(indexed), len(indexed.suspect_cells())),
        ("full scan", scanned.comparisons, len(scanned), len(scanned.suspect_cells())),
    ]
    print_table(
        "Ablation — constant-PFD detection with and without the pattern index",
        ["strategy", "values compared", "violations", "suspect cells"],
        rows,
    )

    # Both strategies find the same errors; the index inspects far fewer values.
    assert indexed.suspect_cells() == scanned.suspect_cells()
    assert indexed.comparisons < scanned.comparisons / 2
