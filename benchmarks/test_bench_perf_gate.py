"""Perf smoke gate: the recorded hot-path speedups must not regress.

Runs the same validation as ``python benchmarks/run_bench.py --check``
under the ``bench`` marker, so a plain ``pytest benchmarks/`` (or
``pytest -m bench benchmarks/``) fails loudly when any speedup recorded
in ``BENCH_hotpath.json`` has dropped below 1.0×.  Re-measure with
``PYTHONPATH=src python benchmarks/run_bench.py`` after perf-relevant
changes; ``make check`` wires the same gate into the default local
check.
"""

from run_bench import DEFAULT_OUTPUT, check_recorded_speedups


def test_recorded_speedups_have_not_regressed():
    assert DEFAULT_OUTPUT.exists(), (
        f"{DEFAULT_OUTPUT} is missing; run `PYTHONPATH=src python "
        "benchmarks/run_bench.py` to record the hot-path numbers"
    )
    assert check_recorded_speedups(DEFAULT_OUTPUT) == 0
