"""Hot-path benchmark runner — writes the persisted perf baseline.

Runs the discovery-scalability, detection-strategies, and index-ablation
workloads and writes ``BENCH_hotpath.json`` at the repository root: a
machine-readable map of bench name → wall-clock seconds, with the
pre-optimization numbers kept under ``"baseline"`` so every subsequent
run reports its speedup against the committed starting point.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py              # measure, keep baseline
    PYTHONPATH=src python benchmarks/run_bench.py --record-baseline
    PYTHONPATH=src python benchmarks/run_bench.py --cold       # clear caches per round
    PYTHONPATH=src python benchmarks/run_bench.py --check      # perf smoke gate

``--record-baseline`` overwrites the stored baseline with the numbers
just measured (used once, before the optimization work).  ``--cold``
clears the shared pattern/match caches before every round, measuring the
cache-off path.  ``--check`` runs nothing: it validates the recorded
speedups and exits non-zero if any fell below 1.0, so CI can use it as a
perf smoke gate.  See docs/PERFORMANCE.md for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.constrained import constrained_prefix  # noqa: E402
from repro.datagen import generate_phone_state, generate_zip_city_state  # noqa: E402
from repro.detection import DetectionStrategy, ErrorDetector, IncrementalDetector  # noqa: E402
from repro.discovery import DiscoveryConfig, PfdDiscoverer  # noqa: E402
from repro.engine import DataSource, build_executor, plan_detection  # noqa: E402
from repro.patterns import parse_pattern  # noqa: E402
from repro.perf.timers import StageTimers  # noqa: E402
from repro.pfd import PFD  # noqa: E402
from repro.sharding import ShardedDetector, ShardedDiscoverer, ShardedTable  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_hotpath.json"


def _clear_shared_caches() -> None:
    """Reset every process-wide cache (only when it exists in this tree)."""
    try:
        from repro import perf
    except ImportError:  # pre-optimization tree: nothing to clear
        return
    perf.clear_caches()


def _lambda5() -> PFD:
    """The zip-prefix → city variable PFD used by the strategy benches."""
    return PFD.variable(
        "zip",
        "city",
        constrained_prefix(3, parse_pattern("\\D{2}"), head=parse_pattern("\\D{3}")),
        name="lambda5",
    )


def _bench_discovery(n_rows: int) -> Tuple[Callable[[], object], int]:
    table = generate_zip_city_state(n_rows=n_rows, seed=23).table
    discoverer = PfdDiscoverer()

    def run() -> object:
        return discoverer.discover(table)

    run.stage_timers = discoverer.timers
    return run, (2 if n_rows >= 4000 else 3)


def _bench_detection(strategy: str, n_rows: int = 2000) -> Tuple[Callable[[], object], int]:
    table = generate_zip_city_state(n_rows=n_rows, seed=23).table
    pfd = _lambda5()

    def run() -> object:
        return ErrorDetector(table).detect(pfd, strategy=strategy)

    rounds = 3 if strategy == DetectionStrategy.BRUTEFORCE else 15
    return run, rounds


def _bench_index_ablation() -> Tuple[Callable[[], object], int]:
    table = generate_phone_state(n_rows=2000, seed=11, error_rate=0.02).table
    pfds = [p for p in PfdDiscoverer().discover(table) if p.is_constant]
    assert pfds, "index-ablation setup found no constant PFDs"

    def run() -> object:
        detector = ErrorDetector(table)
        report = None
        for pfd in pfds:
            partial = detector.detect(pfd, strategy=DetectionStrategy.INDEX)
            report = partial if report is None else report.merged_with(partial)
        return report

    return run, 5


def _bench_edit_loop(n_rows: int = 8000, k: int = 40):
    """The interactive edit loop: k single-cell fixes, violations re-derived
    after each one.

    Returns *two* workloads: the incremental path (the measured bench)
    and the full-re-detection path, which is recorded as this bench's
    baseline — so the persisted speedup is incremental vs full, the
    paper-relevant comparison.
    """
    dataset = generate_zip_city_state(n_rows=n_rows, seed=23)
    base_table = dataset.table
    pfds = list(PfdDiscoverer().discover(base_table))
    assert pfds, "edit-loop setup discovered no PFDs"
    columns = base_table.column_names()
    # Deterministic single-cell edits: overwrite a cell with the value
    # another row holds in the same column (merges/splits real blocks).
    edits = []
    for i in range(k):
        row = (i * 997) % n_rows
        column = columns[i % len(columns)]
        donor = (i * 499 + 1) % n_rows
        edits.append((row, column, base_table.cell(donor, column)))

    timers = StageTimers()  # shared across rounds so the harness can print it

    def incremental_run() -> object:
        table = base_table.copy()
        detector = IncrementalDetector(table, pfds, timers=timers)
        report = None
        for row, column, value in edits:
            detector.set_cell(row, column, value)
            report = detector.report()
        return report

    def full_run() -> object:
        table = base_table.copy()
        report = None
        for row, column, value in edits:
            table.set_cell(row, column, value)
            report = ErrorDetector(table).detect_all(pfds)
        return report

    incremental_run.stage_timers = timers
    return incremental_run, 5, full_run


def _bench_sharded_discovery(n_rows: int = 64000, shard_rows: int = 8000):
    """Sharded discovery at out-of-core scale: vectorized kernels vs the
    same-tree scalar reference.

    A paired bench: the recorded baseline runs the identical sharded
    pipeline with ``use_kernels="off"`` over the same sharded table, so
    the persisted speedup isolates the columnar kernel layer (the two
    paths produce identical rule sets — the differential suite proves
    it).  Both sides run warm; their merged artifacts use disjoint cache
    keys, so neither primes the other.
    """
    table = generate_zip_city_state(n_rows=n_rows, seed=23).table
    sharded = ShardedTable.from_table(table, shard_rows)
    kernel = ShardedDiscoverer(DiscoveryConfig(use_kernels="on"))
    scalar = ShardedDiscoverer(DiscoveryConfig(use_kernels="off"))

    def run() -> object:
        return kernel.discover(sharded)

    def baseline_run() -> object:
        return scalar.discover(sharded)

    run.stage_timers = kernel.discoverer.timers
    return run, 2, baseline_run


def _bench_sharded_detection(n_rows: int = 64000, shard_rows: int = 8000):
    """Sharded detection vs the monolithic single-worker engine.

    A paired bench (like ``incremental_edit_loop``): the recorded
    baseline is the monolithic ``ErrorDetector`` run over the same data
    and rules, so the persisted speedup is sharded-merged emission vs
    row-level monolithic emission — the comparison the sharding PR is
    about.  Both paths run warm (shared caches primed by round one).
    """
    table = generate_zip_city_state(n_rows=n_rows, seed=23).table
    pfds = PfdDiscoverer().discover(table)
    assert pfds, "sharded-detection setup discovered no PFDs"
    sharded = ShardedTable.from_table(table, shard_rows)
    detector = ShardedDetector(sharded)

    def run() -> object:
        return detector.detect_all(pfds)

    def baseline_run() -> object:
        return ErrorDetector(table).detect_all(pfds)

    run.stage_timers = detector.timers
    return run, 5, baseline_run


def _bench_rule_maintenance_edit_loop(
    n_rows: int = 64000, shard_rows: int = 4096, k: int = 8
):
    """The rule-maintenance edit loop: a batch of ``k`` cell edits, then
    the rule set brought back up to date via ``AnmatSession.recheck()``.

    A paired bench: the measured side runs with
    ``rule_maintenance="auto"`` — the seeded :class:`RuleMaintainer`
    re-mines only the candidates whose statistics changed, from the
    delta shards the edit batch dirtied — while the recorded baseline
    runs the *identical* edit stream with ``rule_maintenance="full"``,
    re-discovering the 64k-row table from scratch every batch (the
    pre-PR edit-loop behaviour).  The differential suite proves the two
    produce identical rules, so the persisted speedup isolates the
    maintenance layer.  Each invocation writes fresh values from a
    monotone counter, so no round's edits are no-ops against the
    overlay, and edits land in one column of the first two shards — the
    realistic interactive shape (a user repairing one attribute over a
    neighbourhood of rows) where most shards stay clean and candidates
    not touching the repaired column keep their baseline reports.

    The table is the geo generator widened with three small-domain
    columns (a state-determined region, a random department and grade) —
    a six-column relation with 25+ candidate pairs, where a full
    re-check re-mines every big-LHS candidate (``zip -> *``) but an edit
    batch over one small-domain column dirties only that column's
    candidates.  A three-column table would cap the win near 1.4x: any
    edited column there touches half the expensive candidates.
    """
    import random

    from repro.anmat.session import AnmatSession
    from repro.dataset.table import Table

    geo = generate_zip_city_state(n_rows=n_rows, seed=23).table
    states = list(geo.column_ref("state"))
    regions = {s: f"Region-{i % 4}" for i, s in enumerate(sorted(set(states)))}
    rng = random.Random(23)
    departments = ["Finance", "Engineering", "HR", "Marketing", "Sales", "Research"]
    grades = ["Junior", "Associate", "Senior", "Principal", "Director"]
    table = Table(
        ["zip", "city", "state", "region", "department", "grade"],
        [
            list(geo.column_ref("zip")),
            list(geo.column_ref("city")),
            states,
            [regions[s] for s in states],
            [rng.choice(departments) for _ in range(n_rows)],
            [rng.choice(grades) for _ in range(n_rows)],
        ],
    )
    column = "grade"

    def make_runner(rule_maintenance: str) -> Callable[[], object]:
        sharded = ShardedTable.from_table(table, shard_rows)
        session = AnmatSession(
            dataset_name="bench-rule-maintenance",
            config=DiscoveryConfig(
                shard_rows=shard_rows, rule_maintenance=rule_maintenance
            ),
        )
        session.load_table(sharded)
        session.run_discovery()
        state = {"step": 0}

        def run() -> object:
            for _ in range(k):
                state["step"] += 1
                step = state["step"]
                row = (step * 131) % (2 * shard_rows)
                donor = (step * 499 + 1) % n_rows
                session.table.set_cell(row, column, table.cell(donor, column))
            return session.recheck()

        run.session = session  # keeps the maintainer (and its timers) alive
        return run

    run = make_runner("auto")
    baseline_run = make_runner("full")
    run.stage_timers = run.session._maintainer.timers
    return run, 3, baseline_run


def _bench_engine_parity(n_rows: int = 64000, shard_rows: int = 8000):
    """Detection through the engine API: sharded backend vs serial backend.

    A paired bench like ``sharded_detection_64000``, but with both sides
    going ``plan → executor.run(plan)`` — so the recorded speedup proves
    the engine seam adds no overhead over the PR-4 direct-call numbers
    (the --check floor matches ``sharded_detection_64000``'s 2.0x).
    """
    table = generate_zip_city_state(n_rows=n_rows, seed=23).table
    pfds = PfdDiscoverer().discover(table)
    assert pfds, "engine-parity setup discovered no PFDs"
    sharded_config = DiscoveryConfig(shard_rows=shard_rows)
    serial_config = DiscoveryConfig()
    source = DataSource(table)
    sharded_plan = plan_detection(table.n_rows, sharded_config)
    serial_plan = plan_detection(table.n_rows, serial_config)

    def run() -> object:
        return build_executor(sharded_plan).run_detection(sharded_plan, source, pfds)

    def baseline_run() -> object:
        return build_executor(serial_plan).run_detection(serial_plan, source, pfds)

    return run, 5, baseline_run


def _memory_out_of_core(
    n_rows: int = 256_000, shard_rows: int = 16_000
) -> Dict[str, float]:
    """Peak tracemalloc of the never-materialized spill-store session.

    A paired *memory* bench: the baseline reading is what merely loading
    the same CSV into a monolithic ``Table`` costs, the measurement is
    the full profile → discover → detect session over a spill store with
    two resident shards.  Recorded under ``payload["memory"]`` as peaks
    and a ratio — not under ``speedup``, because the comparison is bytes,
    not seconds.
    """
    import gc
    import tempfile
    import tracemalloc

    from repro.anmat.session import AnmatSession
    from repro.dataset.csvio import read_csv, read_csv_sharded, write_csv
    from repro.sharding import SpillToDiskShardStore

    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "zip_city_state.csv"
        write_csv(generate_zip_city_state(n_rows=n_rows, seed=23).table, csv_path)
        gc.collect()

        _clear_shared_caches()
        tracemalloc.start()
        table = read_csv(csv_path)
        baseline_peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()
        del table
        _clear_shared_caches()
        gc.collect()

        tracemalloc.start()
        store = SpillToDiskShardStore(cache_shards=2)
        sharded = read_csv_sharded(csv_path, shard_rows, store=store)
        session = AnmatSession(dataset_name="bench-out-of-core")
        session.load_table(sharded)
        session.set_parameters(min_coverage=0.5)
        session.run_profiling()
        session.run_discovery()
        session.confirm_all()
        session.run_detection()
        session.close()
        peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()

    return {
        "peak_mb": round(peak / 1e6, 2),
        "baseline_peak_mb": round(baseline_peak / 1e6, 2),
        "ratio": round(peak / baseline_peak, 4),
    }


def _remote_object_faults(
    n_rows: int = 64_000,
    shard_rows: int = 8_000,
    fault_rate: float = 0.05,
    prefetch_depth: int = 0,
) -> Dict[str, float]:
    """Sharded detection with every shard behind the fault-injected
    remote HTTP client, vs the same run over clean in-memory shards.

    A paired *remote* bench: the baseline reading is the clean in-memory
    sharded detection, the measurement is the identical workload with
    shard bytes crossing a loopback HTTP object server through a
    :class:`FaultInjectingClient` firing at ``fault_rate`` — so the
    recorded ratio prices the transport plus the retry/backoff healing.
    With ``prefetch_depth > 0`` (the ``pipelined_remote_*`` variant) the
    store's prefetching reader fetches and checksum-verifies shards
    ahead on background threads, so the ratio additionally prices how
    much of that I/O the fetch pipeline hides behind compute; the
    readings then include the unhidden ``fetch_wait`` seconds and the
    hit counters.  Recorded under ``payload["remote"]`` — not under
    ``speedup``, because remote I/O under faults is an overhead to
    bound, not a win to gate upward.
    """
    from repro.sharding import (
        FaultInjectingClient,
        HttpObjectClient,
        ObjectShardStore,
        RetryPolicy,
    )
    from repro.sharding.devserver import ObjectHTTPServer

    table = generate_zip_city_state(n_rows=n_rows, seed=23).table
    pfds = PfdDiscoverer().discover(table)
    assert pfds, "remote-faults setup discovered no PFDs"

    clean_sharded = ShardedTable.from_table(table, shard_rows)
    _clear_shared_caches()
    started = time.perf_counter()
    clean_report = ShardedDetector(clean_sharded).detect_all(pfds)
    clean_seconds = time.perf_counter() - started

    with ObjectHTTPServer() as server:
        client = FaultInjectingClient(
            HttpObjectClient(server.url), seed=23, fault_rate=fault_rate
        )
        store = ObjectShardStore(
            client=client,
            owns_client=True,
            prefix="bench",
            cache_shards=2,
            retry_policy=RetryPolicy(max_attempts=8, base_delay=0.0),
            prefetch_depth=prefetch_depth,
        )
        sharded = ShardedTable.from_table(table, shard_rows, store=store)
        _clear_shared_caches()
        started = time.perf_counter()
        report = ShardedDetector(sharded).detect_all(pfds)
        seconds = time.perf_counter() - started
        assert (
            report.canonical_violations() == clean_report.canonical_violations()
        ), "faulted remote detection diverged from the clean run"
        readings = {
            "seconds": round(seconds, 6),
            "clean_seconds": round(clean_seconds, 6),
            "overhead_ratio": round(seconds / clean_seconds, 4),
            "rows_per_s": round(n_rows / seconds, 1),
            "fault_rate": fault_rate,
            "faults_injected": client.total_faults,
            "retried_reads": store.retried_reads,
            "retried_puts": store.retried_puts,
            "fetch_wait_seconds": round(
                store.timers.totals().get("fetch_wait", 0.0), 6
            ),
        }
        if prefetch_depth > 0:
            readings["prefetch_depth"] = prefetch_depth
            readings["prefetch_hits"] = store.prefetch_hits
            readings["demand_fetches"] = store._prefetcher.demand_fetches
        store.close()
    return readings


#: bench name → zero-argument setup returning (workload, default rounds)
#: or (workload, default rounds, baseline workload) — the third element
#: is measured and recorded under ``baseline`` whenever the bench has no
#: stored baseline yet (or ``--record-baseline`` is given), so paired
#: benches persist their own reference point.
BENCHES: Dict[str, Callable[[], Tuple]] = {
    "discovery_scalability_2000": lambda: _bench_discovery(2000),
    "discovery_scalability_8000": lambda: _bench_discovery(8000),
    "detection_index_2000": lambda: _bench_detection(DetectionStrategy.INDEX),
    "detection_scan_2000": lambda: _bench_detection(DetectionStrategy.SCAN),
    "detection_bruteforce_2000": lambda: _bench_detection(DetectionStrategy.BRUTEFORCE),
    "index_ablation_phone_2000": lambda: _bench_index_ablation(),
    "incremental_edit_loop_8000": lambda: _bench_edit_loop(),
    "rule_maintenance_edit_loop_64000": lambda: _bench_rule_maintenance_edit_loop(),
    "sharded_discovery_64000": lambda: _bench_sharded_discovery(),
    "sharded_detection_64000": lambda: _bench_sharded_detection(),
    "engine_parity_64000": lambda: _bench_engine_parity(),
}

#: benches the --check gate requires to be present in "current" — a
#: baseline file predating them fails the gate until re-measured
REQUIRED_BENCHES = (
    "sharded_discovery_64000",
    "sharded_detection_64000",
    "engine_parity_64000",
    "rule_maintenance_edit_loop_64000",
)

#: per-bench speedup floors stricter than the global 1.0 (the sharded
#: detection engine's merge-time emission must stay >= 2x the monolithic
#: single-worker path at 64k rows — with or without the engine seam in
#: between, so the plan/executor layer is gated at no regression vs the
#: PR-4 direct-call numbers)
SPEEDUP_FLOORS = {
    "sharded_detection_64000": 2.0,
    "engine_parity_64000": 2.0,
    # the vectorized kernel path must stay >= 2x its scalar reference
    "sharded_discovery_64000": 2.0,
    # maintaining the rule set from delta shards must stay >= 3x a full
    # re-discovery per edit batch at 64k rows
    "rule_maintenance_edit_loop_64000": 3.0,
}

#: memory bench name → one-shot workload returning its peak readings
MEMORY_BENCHES: Dict[str, Callable[[], Dict[str, float]]] = {
    "out_of_core_256000": _memory_out_of_core,
}

#: --check ceilings on recorded memory ratios: the out-of-core session's
#: peak must stay below 40% of the materialized-table footprint (the
#: acceptance bar of the never-materialized session work)
MEMORY_RATIO_CEILINGS = {
    "out_of_core_256000": 0.40,
}

#: remote bench name → one-shot workload returning its readings
REMOTE_BENCHES: Dict[str, Callable[[], Dict[str, float]]] = {
    "remote_object_faults_64000": _remote_object_faults,
    "pipelined_remote_64000": lambda: _remote_object_faults(prefetch_depth=4),
}

#: --check ceilings on recorded remote overhead ratios: detection with
#: shard bytes crossing the loopback HTTP store under a 5% fault rate
#: must stay under this multiple of the clean in-memory sharded run —
#: and must actually have healed injected faults (retries > 0), or the
#: bench measured nothing.  The pipelined variant is the same workload
#: through the prefetching reader; its tighter ceiling gates that the
#: fetch pipeline keeps hiding the GET + checksum work behind compute.
REMOTE_OVERHEAD_CEILINGS = {
    "remote_object_faults_64000": 3.0,
    "pipelined_remote_64000": 1.4,
}


def measure(run: Callable[[], object], rounds: int, cold: bool) -> float:
    """Best-of-``rounds`` wall-clock seconds for one workload."""
    timings: List[float] = []
    for _ in range(rounds):
        if cold:
            _clear_shared_caches()
        started = time.perf_counter()
        run()
        timings.append(time.perf_counter() - started)
    return min(timings)


def check_recorded_speedups(output: Path) -> int:
    """The ``--check`` perf smoke gate over the persisted baseline file."""
    if not output.exists():
        print(f"--check: {output} does not exist; run the benches first")
        return 1
    payload = json.loads(output.read_text())
    speedups: Dict[str, float] = payload.get("speedup", {})
    if not speedups:
        print(f"--check: {output} records no speedups; run the benches first")
        return 1
    missing = [
        name for name in REQUIRED_BENCHES if name not in payload.get("current", {})
    ]
    if missing:
        print(f"--check FAILED: required bench(es) not recorded: {missing}")
        return 1
    regressed = []
    for name, speedup in sorted(speedups.items()):
        floor = SPEEDUP_FLOORS.get(name, 1.0)
        verdict = "ok" if speedup >= floor else "REGRESSED"
        print(f"{name:32s} {speedup:8.3f}x  (floor {floor:.1f}x)  {verdict}")
        if speedup < floor:
            regressed.append(name)
    memory: Dict[str, Dict[str, float]] = payload.get("memory", {})
    for name, ceiling in sorted(MEMORY_RATIO_CEILINGS.items()):
        entry = memory.get(name)
        if entry is None:
            print(f"--check FAILED: memory bench {name!r} not recorded")
            return 1
        ratio = entry.get("ratio")
        verdict = "ok" if ratio is not None and ratio < ceiling else "REGRESSED"
        print(
            f"{name:32s} {ratio:8.3f}   (memory ratio, ceiling {ceiling:.2f})  {verdict}"
        )
        if verdict != "ok":
            regressed.append(name)
    remote: Dict[str, Dict[str, float]] = payload.get("remote", {})
    for name, ceiling in sorted(REMOTE_OVERHEAD_CEILINGS.items()):
        entry = remote.get(name)
        if entry is None:
            print(f"--check FAILED: remote bench {name!r} not recorded")
            return 1
        ratio = entry.get("overhead_ratio")
        healed = entry.get("retried_reads", 0) + entry.get("retried_puts", 0)
        ok = ratio is not None and ratio < ceiling and healed > 0
        verdict = "ok" if ok else "REGRESSED"
        print(
            f"{name:32s} {ratio:8.3f}   (remote overhead, ceiling {ceiling:.2f}, "
            f"{entry.get('faults_injected', 0)} faults healed via {healed} retries)  "
            f"{verdict}"
        )
        if not ok:
            regressed.append(name)
    if regressed:
        print(
            f"\n--check FAILED: {len(regressed)} bench(es) out of bounds: {regressed}"
        )
        return 1
    print(
        f"\n--check ok: all {len(speedups)} recorded speedups at or above their "
        f"floors, {len(MEMORY_RATIO_CEILINGS)} memory ratio(s) and "
        f"{len(REMOTE_OVERHEAD_CEILINGS)} remote overhead ratio(s) under their "
        "ceilings"
    )
    return 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--record-baseline",
        action="store_true",
        help="store the measured numbers as the baseline too",
    )
    parser.add_argument(
        "--cold",
        action="store_true",
        help="clear shared caches before every round (measures the cache-off path)",
    )
    parser.add_argument(
        "--only", nargs="*", default=None, help="run only the named benches"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "perf smoke gate: validate the speedups recorded in the output "
            "file and exit non-zero if any has regressed below 1.0 (runs no benches)"
        ),
    )
    args = parser.parse_args(argv)

    if args.check:
        return check_recorded_speedups(args.output)

    known = list(BENCHES) + list(MEMORY_BENCHES) + list(REMOTE_BENCHES)
    names = args.only or known
    unknown = [n for n in names if n not in known]
    if unknown:
        parser.error(f"unknown bench names: {unknown}; known: {known}")

    previous: Dict[str, object] = {}
    if args.output.exists():
        previous = json.loads(args.output.read_text())
    baseline: Dict[str, float] = dict(previous.get("baseline", {}))
    current: Dict[str, float] = dict(previous.get("current", {}))
    memory: Dict[str, Dict[str, float]] = dict(previous.get("memory", {}))
    remote: Dict[str, Dict[str, float]] = dict(previous.get("remote", {}))

    for name in (n for n in names if n in BENCHES):
        setup = BENCHES[name]()
        run, rounds = setup[0], setup[1]
        baseline_run = setup[2] if len(setup) > 2 else None
        if baseline_run is not None and (args.record_baseline or name not in baseline):
            _clear_shared_caches()
            baseline[name] = round(measure(baseline_run, rounds, cold=args.cold), 6)
        _clear_shared_caches()
        seconds = measure(run, rounds, cold=args.cold)
        current[name] = round(seconds, 6)
        if args.record_baseline and baseline_run is None:
            baseline[name] = round(seconds, 6)
        base = baseline.get(name)
        speedup = f"  ({base / seconds:.2f}x vs baseline)" if base else ""
        print(f"{name:32s} {seconds * 1000:10.2f} ms{speedup}")
        timers = getattr(run, "stage_timers", None)
        if timers is not None and timers.totals():
            # per-stage wall clock accumulated across the measured rounds
            for line in timers.summary().splitlines():
                print(f"    {line}")

    for name in (n for n in names if n in MEMORY_BENCHES):
        readings = MEMORY_BENCHES[name]()
        memory[name] = readings
        print(
            f"{name:32s} {readings['peak_mb']:8.1f} MB peak  "
            f"({readings['ratio']:.3f}x the {readings['baseline_peak_mb']:.1f} MB "
            f"materialized footprint)"
        )

    for name in (n for n in names if n in REMOTE_BENCHES):
        readings = REMOTE_BENCHES[name]()
        remote[name] = readings
        print(
            f"{name:32s} {readings['seconds'] * 1000:10.2f} ms  "
            f"({readings['overhead_ratio']:.3f}x the clean in-memory run; "
            f"{readings['faults_injected']} faults at rate "
            f"{readings['fault_rate']}, healed via {readings['retried_reads']} "
            f"read + {readings['retried_puts']} put retries)"
        )
        # I/O-vs-compute overlap: fetch_wait is the unhidden remainder of
        # shard I/O the compute path actually blocked on
        wait = readings.get("fetch_wait_seconds")
        if wait is not None:
            blocked = 100.0 * wait / readings["seconds"]
            line = (
                f"    io: blocked {wait * 1000:.2f} ms on shard fetches "
                f"({blocked:.1f}% of wall clock; compute {100.0 - blocked:.1f}%)"
            )
            if "prefetch_hits" in readings:
                line += (
                    f"; prefetch depth {readings['prefetch_depth']} served "
                    f"{readings['prefetch_hits']} shards early, "
                    f"{readings['demand_fetches']} on demand"
                )
            print(line)

    payload = {
        "_meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "mode": "cold" if args.cold else "warm",
            "note": (
                "seconds are best-of-N wall clock; 'baseline' is the pre-PR "
                "tree, 'current' the tree at measurement time -- except for "
                "paired benches (incremental_edit_loop_*, sharded_detection_*, "
                "engine_parity_*, sharded_discovery_*, "
                "rule_maintenance_edit_loop_*), whose baseline is their "
                "same-tree reference workload (full re-detection / monolithic "
                "single-worker detection / serial-executor detection through "
                "the engine / scalar kernels-off sharded discovery / full "
                "re-discovery per edit batch); 'memory' "
                "records tracemalloc peaks of the out-of-core session vs the "
                "materialized-table footprint (a bytes ratio, not a speedup); "
                "'remote' records sharded detection with shard bytes behind "
                "the fault-injected loopback HTTP object client vs the clean "
                "in-memory sharded run (an overhead ratio to bound, plus the "
                "fault/retry counters); pipelined_remote_* is the same "
                "workload through the prefetching reader (shards fetched and "
                "checksum-verified ahead on background threads), with "
                "fetch_wait recording the unhidden I/O the compute path "
                "blocked on"
            ),
        },
        "baseline": baseline,
        "current": current,
        "memory": memory,
        "remote": remote,
        "speedup": {
            name: round(baseline[name] / current[name], 3)
            for name in current
            if baseline.get(name) and current[name] > 0
        },
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
