"""Hot-path benchmark runner — writes the persisted perf baseline.

Runs the discovery-scalability, detection-strategies, and index-ablation
workloads and writes ``BENCH_hotpath.json`` at the repository root: a
machine-readable map of bench name → wall-clock seconds, with the
pre-optimization numbers kept under ``"baseline"`` so every subsequent
run reports its speedup against the committed starting point.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py              # measure, keep baseline
    PYTHONPATH=src python benchmarks/run_bench.py --record-baseline
    PYTHONPATH=src python benchmarks/run_bench.py --cold       # clear caches per round

``--record-baseline`` overwrites the stored baseline with the numbers
just measured (used once, before the optimization work).  ``--cold``
clears the shared pattern/match caches before every round, measuring the
cache-off path.  See docs/PERFORMANCE.md for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.constrained import constrained_prefix  # noqa: E402
from repro.datagen import generate_phone_state, generate_zip_city_state  # noqa: E402
from repro.detection import DetectionStrategy, ErrorDetector  # noqa: E402
from repro.discovery import PfdDiscoverer  # noqa: E402
from repro.patterns import parse_pattern  # noqa: E402
from repro.pfd import PFD  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_hotpath.json"


def _clear_shared_caches() -> None:
    """Reset every process-wide cache (only when it exists in this tree)."""
    try:
        from repro import perf
    except ImportError:  # pre-optimization tree: nothing to clear
        return
    perf.clear_caches()


def _lambda5() -> PFD:
    """The zip-prefix → city variable PFD used by the strategy benches."""
    return PFD.variable(
        "zip",
        "city",
        constrained_prefix(3, parse_pattern("\\D{2}"), head=parse_pattern("\\D{3}")),
        name="lambda5",
    )


def _bench_discovery(n_rows: int) -> Tuple[Callable[[], object], int]:
    table = generate_zip_city_state(n_rows=n_rows, seed=23).table
    return (lambda: PfdDiscoverer().discover(table)), (2 if n_rows >= 4000 else 3)


def _bench_detection(strategy: str, n_rows: int = 2000) -> Tuple[Callable[[], object], int]:
    table = generate_zip_city_state(n_rows=n_rows, seed=23).table
    pfd = _lambda5()

    def run() -> object:
        return ErrorDetector(table).detect(pfd, strategy=strategy)

    rounds = 3 if strategy == DetectionStrategy.BRUTEFORCE else 15
    return run, rounds


def _bench_index_ablation() -> Tuple[Callable[[], object], int]:
    table = generate_phone_state(n_rows=2000, seed=11, error_rate=0.02).table
    pfds = [p for p in PfdDiscoverer().discover(table) if p.is_constant]
    assert pfds, "index-ablation setup found no constant PFDs"

    def run() -> object:
        detector = ErrorDetector(table)
        report = None
        for pfd in pfds:
            partial = detector.detect(pfd, strategy=DetectionStrategy.INDEX)
            report = partial if report is None else report.merged_with(partial)
        return report

    return run, 5


#: bench name → zero-argument setup returning (workload, default rounds).
BENCHES: Dict[str, Callable[[], Tuple[Callable[[], object], int]]] = {
    "discovery_scalability_2000": lambda: _bench_discovery(2000),
    "discovery_scalability_8000": lambda: _bench_discovery(8000),
    "detection_index_2000": lambda: _bench_detection(DetectionStrategy.INDEX),
    "detection_scan_2000": lambda: _bench_detection(DetectionStrategy.SCAN),
    "detection_bruteforce_2000": lambda: _bench_detection(DetectionStrategy.BRUTEFORCE),
    "index_ablation_phone_2000": lambda: _bench_index_ablation(),
}


def measure(run: Callable[[], object], rounds: int, cold: bool) -> float:
    """Best-of-``rounds`` wall-clock seconds for one workload."""
    timings: List[float] = []
    for _ in range(rounds):
        if cold:
            _clear_shared_caches()
        started = time.perf_counter()
        run()
        timings.append(time.perf_counter() - started)
    return min(timings)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--record-baseline",
        action="store_true",
        help="store the measured numbers as the baseline too",
    )
    parser.add_argument(
        "--cold",
        action="store_true",
        help="clear shared caches before every round (measures the cache-off path)",
    )
    parser.add_argument(
        "--only", nargs="*", default=None, help="run only the named benches"
    )
    args = parser.parse_args(argv)

    names = args.only or list(BENCHES)
    unknown = [n for n in names if n not in BENCHES]
    if unknown:
        parser.error(f"unknown bench names: {unknown}; known: {list(BENCHES)}")

    previous: Dict[str, object] = {}
    if args.output.exists():
        previous = json.loads(args.output.read_text())
    baseline: Dict[str, float] = dict(previous.get("baseline", {}))
    current: Dict[str, float] = dict(previous.get("current", {}))

    for name in names:
        run, rounds = BENCHES[name]()
        _clear_shared_caches()
        seconds = measure(run, rounds, cold=args.cold)
        current[name] = round(seconds, 6)
        if args.record_baseline:
            baseline[name] = round(seconds, 6)
        base = baseline.get(name)
        speedup = f"  ({base / seconds:.2f}x vs baseline)" if base else ""
        print(f"{name:32s} {seconds * 1000:10.2f} ms{speedup}")

    payload = {
        "_meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "mode": "cold" if args.cold else "warm",
            "note": (
                "seconds are best-of-N wall clock; 'baseline' is the pre-PR "
                "tree, 'current' the tree at measurement time"
            ),
        },
        "baseline": baseline,
        "current": current,
        "speedup": {
            name: round(baseline[name] / current[name], 3)
            for name in current
            if baseline.get(name) and current[name] > 0
        },
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
