"""E1 — the introduction's running example (Tables 1 and 2, λ1–λ5).

Regenerates the paper's discussion: λ2/λ4 detect r4[gender] in the Name
table and λ3/λ5 detect s4[city] in the Zip table.  The benchmark measures
applying all five hand-written PFDs to both tables.
"""

from repro.constrained import constrained_first_token, constrained_prefix
from repro.datagen import name_table_d1, zip_table_d2
from repro.detection import ErrorDetector
from repro.patterns import parse_pattern
from repro.pfd import PFD

from conftest import print_table


def build_lambdas():
    return {
        "lambda1": PFD.constant("name", "gender", [{"name": "John\\ \\A*", "gender": "M"}], name="lambda1"),
        "lambda2": PFD.constant("name", "gender", [{"name": "Susan\\ \\A*", "gender": "F"}], name="lambda2"),
        "lambda3": PFD.constant("zip", "city", [{"zip": "900\\D{2}", "city": "Los Angeles"}], name="lambda3"),
        "lambda4": PFD.variable("name", "gender", constrained_first_token(), name="lambda4"),
        "lambda5": PFD.variable(
            "zip", "city",
            constrained_prefix(3, parse_pattern("\\D{2}"), head=parse_pattern("\\D{3}")),
            name="lambda5",
        ),
    }


def apply_all(lambdas, name_table, zip_table):
    name_detector = ErrorDetector(name_table)
    zip_detector = ErrorDetector(zip_table)
    results = {}
    for name, pfd in lambdas.items():
        detector = name_detector if pfd.lhs_attribute == "name" else zip_detector
        results[name] = detector.detect(pfd)
    return results


def test_intro_example(benchmark):
    name_dataset = name_table_d1()
    zip_dataset = zip_table_d2()
    lambdas = build_lambdas()
    results = benchmark(apply_all, lambdas, name_dataset.table, zip_dataset.table)

    rows = []
    for name, pfd in lambdas.items():
        report = results[name]
        involved = sorted({cell for violation in report for cell in violation.cells})
        rows.append(
            (
                name,
                pfd.describe().split(": ", 1)[1],
                len(report),
                sorted(report.suspect_cells()),
            )
        )
    print_table(
        "E1 — λ1–λ5 on the paper's Tables 1 and 2",
        ["PFD", "definition", "violations", "suspect cells"],
        rows,
    )

    # the shape the paper reports: λ2/λ3/λ4/λ5 each expose the planted error
    assert results["lambda2"].suspect_cells() == {(3, "gender")}
    assert results["lambda3"].suspect_cells() == {(3, "city")}
    assert (3, "gender") in {c for v in results["lambda4"] for c in v.cells}
    assert results["lambda5"].suspect_cells() == {(3, "city")}
    assert results["lambda1"].is_empty()
