"""E6 — Figure 5: detecting errors using PFDs (Full Name → Gender).

Reproduces the Figure 5 screen: the violations of the confirmed
Full Name → Gender dependency together with the violating records, plus
precision/recall against the injected ground truth (which the original
demo could not compute because it had no labels).  The benchmark measures
the detection pass.
"""

from repro.anmat.report import render_violations
from repro.detection import ErrorDetector
from repro.discovery import PfdDiscoverer
from repro.metrics import evaluate_report

from conftest import print_table


def test_fig5_error_detection(benchmark, fullname_dataset):
    result = PfdDiscoverer().discover_with_report(fullname_dataset.table, relation="D2")
    pfds = result.pfds_for("full_name", "gender")
    assert pfds
    detector = ErrorDetector(fullname_dataset.table)

    report = benchmark(detector.detect_all, pfds)

    rows = []
    for violation in report.violations[:10]:
        row = violation.suspect_cell[0]
        rows.append(
            (
                violation.pfd_name,
                fullname_dataset.table.cell(row, "full_name"),
                violation.observed_value,
                violation.expected_value or "⊥",
            )
        )
    print_table(
        "E6 — Figure 5: violations of Full Name → Gender (first 10)",
        ["PFD", "full_name", "observed gender", "expected"],
        rows,
    )
    evaluation = evaluate_report(report, fullname_dataset.error_cells)
    print(
        f"\nviolations={len(report)} suspect_cells={len(report.suspect_cells())} "
        f"precision={evaluation.precision:.3f} recall={evaluation.recall:.3f} f1={evaluation.f1:.3f}"
    )
    print()
    print(render_violations(report, fullname_dataset.table, max_rows=5))

    # Shape: the flipped-gender cells are found with high recall.
    assert evaluation.recall >= 0.9
    assert evaluation.precision >= 0.5
