"""E10 — the headline claim: PFDs detect errors existing approaches cannot.

Runs four detectors over the same dirty datasets — classical FDs, constant
CFDs, single-column pattern outliers, and ANMAT's PFDs — and reports
cell-level precision/recall against the injected ground truth.  The paper
states the claim qualitatively ("new (i.e., cannot be detected by other
ICs) data errors can be detected"); the expected shape is that the
baselines score near zero recall on the partial-value error families
while PFDs recover most of them.
"""

from repro.baselines import (
    PatternOutlierDetector,
    detect_cfd_violations,
    detect_fd_violations,
    discover_constant_cfds,
    discover_fds,
)
from repro.baselines.fd_discovery import FdDiscoveryConfig
from repro.detection import ErrorDetector
from repro.discovery import PfdDiscoverer
from repro.metrics import evaluate_report

from conftest import print_table


def run_all_detectors(dataset):
    table = dataset.table
    truth = dataset.error_cells
    results = {}

    fds = [d.fd for d in discover_fds(table, FdDiscoveryConfig(max_lhs_size=1))]
    results["FD"] = evaluate_report(detect_fd_violations(table, fds), truth)

    cfds = discover_constant_cfds(table)
    results["CFD"] = evaluate_report(detect_cfd_violations(table, cfds), truth)

    outliers = PatternOutlierDetector().detect(table)
    results["pattern-outlier"] = evaluate_report(outliers, truth)

    pfds = PfdDiscoverer().discover(table)
    pfd_report = ErrorDetector(table).detect_all(pfds)
    results["PFD"] = evaluate_report(pfd_report, truth)
    return results


def test_baseline_comparison(benchmark, phone_dataset, fullname_dataset, zip_dataset):
    datasets = {"D1 phone→state": phone_dataset, "D2 name→gender": fullname_dataset, "D5 zip→city/state": zip_dataset}

    all_results = benchmark.pedantic(
        lambda: {label: run_all_detectors(ds) for label, ds in datasets.items()},
        rounds=1,
        iterations=1,
    )

    rows = []
    for label, results in all_results.items():
        for approach in ("FD", "CFD", "pattern-outlier", "PFD"):
            evaluation = results[approach]
            rows.append(
                (
                    label,
                    approach,
                    f"{evaluation.precision:.3f}",
                    f"{evaluation.recall:.3f}",
                    f"{evaluation.f1:.3f}",
                )
            )
    print_table(
        "E10 — error-detection recall: FDs / CFDs / pattern outliers / PFDs",
        ["dataset", "approach", "precision", "recall", "f1"],
        rows,
    )

    # Shape: on D1 the unique LHS makes FDs and CFDs useless and the swapped
    # states are syntactically valid, so only PFDs find them; on every
    # dataset PFD recall strictly dominates each baseline's recall.
    d1 = all_results["D1 phone→state"]
    assert d1["FD"].recall == 0.0
    assert d1["CFD"].recall == 0.0
    assert d1["pattern-outlier"].recall == 0.0
    assert d1["PFD"].recall >= 0.9
    for label, results in all_results.items():
        for approach in ("FD", "CFD", "pattern-outlier"):
            assert results["PFD"].recall >= results[approach].recall, (label, approach)
