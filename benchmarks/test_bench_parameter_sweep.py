"""E9 — Section 4 parameter setting: the coverage / allowed-violations
trade-off.

"Both parameters represent a trade-off between discovering more
dependencies and reducing the rate of false positives.  For example,
using [a] smaller percentage for the coverage will allow to report more
dependencies but it will report more dependencies which are false
positives."  This benchmark sweeps both knobs on the D5 stand-in and
reports the number of discovered PFDs and the cell-level precision /
recall of detecting the injected errors with them.
"""

from repro.detection import ErrorDetector
from repro.discovery import DiscoveryConfig, PfdDiscoverer
from repro.metrics import evaluate_report

from conftest import print_table

COVERAGES = [0.2, 0.4, 0.6, 0.8, 0.95]
TOLERANCES = [0.0, 0.02, 0.05, 0.1, 0.2]


def sweep_coverage(table, truth):
    rows = []
    for coverage in COVERAGES:
        config = DiscoveryConfig(min_coverage=coverage, allowed_violation_ratio=0.05)
        pfds = PfdDiscoverer(config).discover(table)
        report = ErrorDetector(table).detect_all(pfds)
        evaluation = evaluate_report(report, truth)
        rows.append((coverage, len(pfds), len(report), f"{evaluation.precision:.3f}", f"{evaluation.recall:.3f}"))
    return rows


def sweep_tolerance(table, truth):
    rows = []
    for tolerance in TOLERANCES:
        config = DiscoveryConfig(min_coverage=0.6, allowed_violation_ratio=tolerance)
        pfds = PfdDiscoverer(config).discover(table)
        report = ErrorDetector(table).detect_all(pfds)
        evaluation = evaluate_report(report, truth)
        rows.append((tolerance, len(pfds), len(report), f"{evaluation.precision:.3f}", f"{evaluation.recall:.3f}"))
    return rows


def test_parameter_sweep(benchmark, zip_dataset):
    table = zip_dataset.table
    truth = zip_dataset.error_cells

    coverage_rows = benchmark.pedantic(sweep_coverage, args=(table, truth), rounds=1, iterations=1)
    tolerance_rows = sweep_tolerance(table, truth)

    print_table(
        "E9a — minimum coverage γ sweep (allowed violations fixed at 0.05)",
        ["min coverage", "#PFDs", "#violations", "precision", "recall"],
        coverage_rows,
    )
    print_table(
        "E9b — allowed-violation ratio sweep (coverage fixed at 0.6)",
        ["allowed violations", "#PFDs", "#violations", "precision", "recall"],
        tolerance_rows,
    )

    # Shape: lowering the coverage threshold never yields fewer dependencies,
    # and the strictest setting still recovers the injected errors.
    pfd_counts = [row[1] for row in coverage_rows]
    assert pfd_counts == sorted(pfd_counts, reverse=True)
    assert float(coverage_rows[0][4]) >= 0.75
    # Raising the tolerance never reduces the number of dependencies.
    tolerance_counts = [row[1] for row in tolerance_rows]
    assert tolerance_counts == sorted(tolerance_counts)
