"""E11 — scalability of PFD discovery.

The demo positions ANMAT next to big-data cleansing systems, so this
benchmark measures how discovery scales with the number of rows (on the
zip → city/state stand-in) and with the number of columns (by widening
the table with additional structured-code columns).  The expected shape
is near-linear growth in rows and roughly linear growth in the number of
candidate dependencies.
"""

import time

from repro.datagen import generate_zip_city_state
from repro.dataset import Table
from repro.discovery import PfdDiscoverer

from conftest import print_table

ROW_SIZES = [1000, 2000, 4000, 8000]


def widen(table: Table, extra_columns: int) -> Table:
    """Add synthetic structured columns derived from the zip column."""
    widened = table
    zips = table.column_ref("zip")
    for i in range(extra_columns):
        values = [f"X{i}-{z[: 2 + (i % 3)]}" for z in zips]
        widened = widened.with_column(f"code{i}", values)
    return widened


def test_discovery_scaling_with_rows(benchmark):
    table = generate_zip_city_state(n_rows=2000, seed=23).table
    benchmark.pedantic(PfdDiscoverer().discover, args=(table,), rounds=2, iterations=1)

    rows = []
    times = {}
    for n_rows in ROW_SIZES:
        dataset = generate_zip_city_state(n_rows=n_rows, seed=23)
        started = time.perf_counter()
        pfds = PfdDiscoverer().discover(dataset.table)
        elapsed = time.perf_counter() - started
        times[n_rows] = elapsed
        rows.append((n_rows, len(pfds), f"{elapsed:.2f}s"))
    print_table(
        "E11a — discovery time vs. number of rows (zip/city/state)",
        ["rows", "#PFDs", "time"],
        rows,
    )
    # Shape: 8x the rows costs far less than 8^2 = 64x the time (near-linear).
    assert times[8000] / max(times[1000], 1e-6) < 40


def test_discovery_scaling_with_columns(benchmark):
    base = generate_zip_city_state(n_rows=1500, seed=23).table

    def run_series():
        series = []
        for extra in (0, 2, 4):
            table = widen(base, extra)
            started = time.perf_counter()
            result = PfdDiscoverer().discover_with_report(table)
            elapsed = time.perf_counter() - started
            series.append((table.n_columns, len(result.reports), len(result.pfds), f"{elapsed:.2f}s"))
        return series

    rows = benchmark.pedantic(run_series, rounds=1, iterations=1)
    print_table(
        "E11b — discovery vs. number of columns (widened zip table)",
        ["columns", "candidate dependencies", "#PFDs", "time"],
        rows,
    )
    # Shape: more columns → more candidate dependencies examined.
    candidates = [row[1] for row in rows]
    assert candidates == sorted(candidates)
