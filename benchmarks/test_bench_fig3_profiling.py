"""E4 — Figure 3: profiling and listing the patterns in the data.

Regenerates the profiling screen for the D5 stand-in: per column, the
dominant patterns in the GUI's ``pattern::position, frequency`` format.
The benchmark measures profiling the full table.
"""

from repro.dataset import profile_table

from conftest import print_table


def test_fig3_profiling(benchmark, zip_dataset):
    profile = benchmark(profile_table, zip_dataset.table)

    rows = []
    for column in profile:
        for stat in column.value_patterns[:3]:
            rows.append((column.name, stat.render(), f"{stat.ratio:.1%}", ", ".join(stat.examples[:2])))
    print_table(
        "E4 — Figure 3: dominant patterns per column (zip/city/state, 3000 rows)",
        ["column", "pattern::position, frequency", "share", "examples"],
        rows,
    )

    # Shape: zip is dominated by \D{5}, city and state by word-shaped patterns.
    zip_patterns = [s.pattern_text for s in profile["zip"].value_patterns]
    assert zip_patterns[0] == "\\D{5}"
    assert profile["state"].value_patterns[0].pattern_text == "\\LU{2}"
    assert profile["zip"].is_single_token
    # candidate pruning keeps all three columns (zip is a code, not a measure)
    assert set(profile.pfd_candidate_columns()) == {"zip", "city", "state"}
