"""E3 — Figure 2: the Discover-PFDs algorithm, token mode vs. n-gram modes.

The algorithm can decompose LHS values either into whitespace tokens or
into (prefix) n-grams; the paper notes n-grams are for single-token
code/id attributes.  This benchmark runs both extraction modes over both
a code-like dataset (zip → city) and a text dataset (full name → gender)
and reports the number of dependencies, tableau sizes and runtimes; the
expected shape is that each mode wins on its intended attribute family.
"""

from repro.discovery import DiscoveryConfig, PfdDiscoverer

from conftest import print_table


def discover_with_mode(table, mode):
    config = DiscoveryConfig(token_mode=mode)
    return PfdDiscoverer(config).discover_with_report(table)


def test_discovery_modes(benchmark, zip_dataset, fullname_dataset):
    result = benchmark.pedantic(
        discover_with_mode, args=(zip_dataset.table, "prefix"), rounds=1, iterations=1
    )

    rows = []
    runs = {
        ("zip/city/state", "prefix"): result,
        ("zip/city/state", "ngram"): discover_with_mode(zip_dataset.table, "ngram"),
        ("zip/city/state", "token"): discover_with_mode(zip_dataset.table, "token"),
        ("full name/gender", "token"): discover_with_mode(fullname_dataset.table, "token"),
        ("full name/gender", "prefix"): discover_with_mode(fullname_dataset.table, "prefix"),
        ("full name/gender", "auto"): discover_with_mode(fullname_dataset.table, "auto"),
    }
    for (dataset, mode), run in runs.items():
        constant_rules = sum(len(p.tableau) for p in run.constant_pfds())
        rows.append(
            (
                dataset,
                mode,
                len(run.pfds),
                len(run.constant_pfds()),
                len(run.variable_pfds()),
                constant_rules,
                f"{run.elapsed_seconds:.2f}s",
            )
        )
    print_table(
        "E3 — Figure 2 algorithm under different value-decomposition modes",
        ["dataset", "mode", "#PFDs", "constant", "variable", "constant rules", "time"],
        rows,
    )

    # Shape: prefix n-grams find the zip dependencies; whitespace tokens find
    # the name dependency; the auto mode picks the right extractor per column.
    assert runs[("zip/city/state", "prefix")].pfds_for("zip", "city")
    assert runs[("full name/gender", "token")].pfds_for("full_name", "gender")
    assert runs[("full name/gender", "auto")].pfds_for("full_name", "gender")
    # token mode cannot see inside single-token zip codes, so it finds no
    # zip → city constant tableau of comparable size
    token_zip = runs[("zip/city/state", "token")].pfds_for("zip", "city")
    prefix_zip = runs[("zip/city/state", "prefix")].pfds_for("zip", "city")
    token_rules = sum(len(p.tableau) for p in token_zip if p.is_constant)
    prefix_rules = sum(len(p.tableau) for p in prefix_zip if p.is_constant)
    assert prefix_rules >= token_rules
