"""E7 — Table 3: discovered PFDs and detected errors on D1, D2 and D5.

Regenerates the paper's summary table on the synthetic stand-ins: for
each dependency the discovered pattern tableau (area-code → state,
first-name → gender, zip-prefix → city/state) next to example detected
errors in the paper's ``value | wrong-RHS`` format, plus precision and
recall against the injected ground truth.  The benchmark measures the
complete discover-then-detect pipeline over all three datasets.
"""

from repro.anmat.report import render_table3
from repro.detection import ErrorDetector
from repro.discovery import PfdDiscoverer
from repro.metrics import evaluate_report

from conftest import print_table

DEPENDENCIES = [
    ("D1", "Phone Number → State", "phone_number", "state"),
    ("D2", "Full Name → Gender", "full_name", "gender"),
    ("D5", "ZIP → CITY", "zip", "city"),
    ("D5", "ZIP → STATE", "zip", "state"),
]


def run_pipeline(datasets):
    """Discover and detect on every Table 3 dataset; returns per-dependency results."""
    outcome = {}
    for label, dataset in datasets.items():
        result = PfdDiscoverer().discover_with_report(dataset.table, relation=label)
        detector = ErrorDetector(dataset.table)
        outcome[label] = (result, detector)
    return outcome


def test_table3(benchmark, phone_dataset, fullname_dataset, zip_dataset):
    datasets = {"D1": phone_dataset, "D2": fullname_dataset, "D5": zip_dataset}
    outcome = benchmark.pedantic(run_pipeline, args=(datasets,), rounds=1, iterations=1)

    table3_entries = []
    score_rows = []
    for label, dependency, lhs, rhs in DEPENDENCIES:
        dataset = datasets[label]
        result, detector = outcome[label]
        pfds = result.pfds_for(lhs, rhs)
        assert pfds, f"no PFD discovered for {dependency}"
        constant = next((p for p in pfds if p.is_constant), pfds[0])
        report = detector.detect_all(pfds)
        truth = {(row, attr) for row, attr in dataset.error_cells if attr == rhs}
        evaluation = evaluate_report(report, truth)
        table3_entries.append((label, dependency, constant, report, dataset.table))
        score_rows.append(
            (
                label,
                dependency,
                len(constant.tableau),
                len(report),
                len(truth),
                f"{evaluation.precision:.3f}",
                f"{evaluation.recall:.3f}",
            )
        )

    print()
    print(render_table3(table3_entries, max_rules=5, max_errors=3))
    print_table(
        "E7 — Table 3 scorecard (vs. injected ground truth)",
        ["data", "dependency", "tableau rules", "violations", "true errors", "precision", "recall"],
        score_rows,
    )

    # Shape: every Table 3 dependency is re-discovered and its injected
    # errors are recovered with high recall.
    for row in score_rows:
        assert float(row[6]) >= 0.75, row
