"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts (a table, a
figure, or a claim made in the text) and prints the reproduced rows so
the run log doubles as the data behind EXPERIMENTS.md.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import pytest


def pytest_collection_modifyitems(items) -> None:
    """Mark everything in benchmarks/ with the ``bench`` marker.

    Combined with ``testpaths = tests`` in pytest.ini this keeps tier-1
    (`pytest -x -q`) fast while `pytest benchmarks/` (or `-m bench`)
    opts in explicitly.  The hook receives the whole session's items, so
    only items that actually live under this directory are marked —
    a mixed `pytest tests/... benchmarks/...` run must not drag unit
    tests into the marker.
    """
    bench_dir = str(Path(__file__).resolve().parent)
    for item in items:
        if str(item.fspath).startswith(bench_dir):
            item.add_marker(pytest.mark.bench)

from repro.datagen import (
    generate_fullname_gender,
    generate_phone_state,
    generate_zip_city_state,
)


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Print an aligned results table under a banner."""
    print(f"\n=== {title} ===")
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    print(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    print("-+-".join("-" * w for w in widths))
    for row in cells:
        print(" | ".join(value.ljust(widths[i]) for i, value in enumerate(row)))


@pytest.fixture(scope="session")
def phone_dataset():
    """D1 stand-in: phone number → state (2 000 rows, 2% swapped states)."""
    return generate_phone_state(n_rows=2000, seed=11, error_rate=0.02)


@pytest.fixture(scope="session")
def fullname_dataset():
    """D2 stand-in: full name → gender (2 000 rows, 2% flipped genders)."""
    return generate_fullname_gender(n_rows=2000, seed=7, error_rate=0.02)


@pytest.fixture(scope="session")
def zip_dataset():
    """D5 stand-in: zip → city/state (3 000 rows, mixed error families)."""
    return generate_zip_city_state(n_rows=3000, seed=23)
