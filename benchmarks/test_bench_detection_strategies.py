"""E8 — detection strategies: brute force vs. pattern index vs. blocking.

Section 3 argues that the naive pairwise check of variable PFDs is
quadratic and that a regex-capable column index plus blocking avoids it.
This benchmark applies λ5 (zip prefix → city) to growing tables with each
strategy and reports the number of value comparisons and the wall-clock
time; brute force grows quadratically while the blocking strategies stay
near-linear.
"""

import time

import pytest

from repro import perf
from repro.constrained import constrained_prefix
from repro.datagen import generate_zip_city_state
from repro.detection import DetectionStrategy, ErrorDetector
from repro.patterns import parse_pattern
from repro.pfd import PFD

from conftest import print_table

SIZES = [500, 1000, 2000, 4000]


def make_pfd() -> PFD:
    return PFD.variable(
        "zip",
        "city",
        constrained_prefix(3, parse_pattern("\\D{2}"), head=parse_pattern("\\D{3}")),
        name="lambda5",
    )


def run_strategy(table, strategy):
    # Each measurement starts cold: the process-wide perf caches would
    # otherwise let whichever strategy runs first pay the matching cost
    # for all the others, flattening the very curves E8 exists to show.
    perf.clear_caches()
    detector = ErrorDetector(table)
    return detector.detect(make_pfd(), strategy=strategy)


@pytest.mark.parametrize("strategy", [DetectionStrategy.BRUTEFORCE, DetectionStrategy.SCAN, DetectionStrategy.INDEX])
def test_strategy_timing(benchmark, strategy):
    """Per-strategy benchmark at a fixed size (2 000 rows)."""
    table = generate_zip_city_state(n_rows=2000, seed=23).table
    report = benchmark.pedantic(run_strategy, args=(table, strategy), rounds=2, iterations=1)
    assert len(report) > 0


def test_strategy_scaling_curves(benchmark):
    """The series behind the scaling figure (printed, asserted on shape)."""

    def run_series():
        rows = []
        comparisons = {}
        for n_rows in SIZES:
            table = generate_zip_city_state(n_rows=n_rows, seed=23).table
            row = [n_rows]
            for strategy in (DetectionStrategy.BRUTEFORCE, DetectionStrategy.INDEX):
                started = time.perf_counter()
                report = run_strategy(table, strategy)
                elapsed = time.perf_counter() - started
                row.extend([report.comparisons, f"{elapsed*1000:.1f}ms"])
                comparisons[(strategy, n_rows)] = report.comparisons
            rows.append(tuple(row))
        return rows, comparisons

    rows, comparisons = benchmark.pedantic(run_series, rounds=1, iterations=1)
    print_table(
        "E8 — variable-PFD detection: brute force vs. index+blocking",
        ["rows", "bruteforce comparisons", "bruteforce time", "blocking comparisons", "blocking time"],
        rows,
    )

    # Shape: doubling the rows roughly quadruples brute-force comparisons
    # but only doubles the blocking comparisons.
    brute_growth = comparisons[(DetectionStrategy.BRUTEFORCE, 4000)] / comparisons[(DetectionStrategy.BRUTEFORCE, 1000)]
    blocking_growth = comparisons[(DetectionStrategy.INDEX, 4000)] / comparisons[(DetectionStrategy.INDEX, 1000)]
    assert brute_growth > 10
    assert blocking_growth < 6
