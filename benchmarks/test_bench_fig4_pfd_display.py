"""E5 — Figure 4: displaying the discovered PFDs.

Runs discovery on the D2 (full name → gender) and D5 (zip → city/state)
stand-ins and prints every discovered dependency with its tableau, the
view the user confirms dependencies from.  The benchmark measures the
discovery run on the full-name dataset.
"""

from repro.anmat.report import render_discovered_pfds
from repro.discovery import DiscoveryConfig, PfdDiscoverer

from conftest import print_table


def test_fig4_pfd_display(benchmark, fullname_dataset, zip_dataset):
    discoverer = PfdDiscoverer(DiscoveryConfig(min_coverage=0.6, allowed_violation_ratio=0.05))
    name_result = benchmark(discoverer.discover_with_report, fullname_dataset.table, "D2")
    zip_result = discoverer.discover_with_report(zip_dataset.table, relation="D5")

    rows = []
    for label, result in (("D2", name_result), ("D5", zip_result)):
        for pfd in result.pfds:
            rows.append(
                (
                    label,
                    f"{pfd.lhs_attribute} → {pfd.rhs_attribute}",
                    pfd.kind.value,
                    len(pfd.tableau),
                    pfd.tableau[0].render() if len(pfd.tableau) else "",
                )
            )
    print_table(
        "E5 — Figure 4: discovered PFDs and tableau sizes",
        ["dataset", "dependency", "kind", "rules", "first tableau row"],
        rows,
    )
    print()
    print(render_discovered_pfds(name_result))

    # Shape: D2 yields full_name → gender, D5 yields zip → city and zip → state,
    # each with both a constant tableau and a variable (constrained) rule.
    assert name_result.pfds_for("full_name", "gender")
    assert zip_result.pfds_for("zip", "city")
    assert zip_result.pfds_for("zip", "state")
    assert any(p.is_variable for p in zip_result.pfds_for("zip", "city"))
    assert any(p.is_constant for p in zip_result.pfds_for("zip", "city"))
