# Development entry points.  `make check` is the pre-merge gate: the
# tier-1 test suite (which includes the rule-maintenance and sharding
# differential gates), the persisted-benchmark perf smoke gate, and the
# discovery/detection/sharding line-coverage gate.

PYTHON ?= python

.PHONY: check test perf-gate coverage bench bench-suite

check: test perf-gate coverage

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Validates the speedups recorded in BENCH_hotpath.json (runs no
# benches); fails loudly when any has regressed below its floor (1.0x;
# 2.0x for the sharded-detection, engine-parity and sharded-discovery
# benches; 3.0x for the rule-maintenance edit loop) or when a required
# bench is missing.  Re-measure with `make bench` after perf-relevant
# changes.
perf-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/run_bench.py --check

# Line-coverage floor for the discovery, detection, sharding, and
# execution engines, measured with the stdlib trace module (no
# dependency; ~45s).
# Per-file table: `python tools/coverage_gate.py --report`.
coverage:
	PYTHONPATH=src $(PYTHON) tools/coverage_gate.py

bench:
	PYTHONPATH=src $(PYTHON) benchmarks/run_bench.py

# The full paper-experiment benchmark suite (pytest-benchmark, slow).
bench-suite:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ -q
