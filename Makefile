# Development entry points.  `make check` is the pre-merge gate: the
# tier-1 test suite (which includes the rule-maintenance and sharding
# differential gates), the fault-injection differential subset, the
# persisted-benchmark perf smoke gate, and the
# discovery/detection/sharding line-coverage gate.

PYTHON ?= python

.PHONY: check test fault-differential perf-gate coverage bench bench-remote bench-suite

check: test fault-differential perf-gate coverage

# The remote object-client gate: unit tests for the retry policy, HTTP
# client and fault injector, plus the differential harness run through
# the fault-injected HTTP client (identical rules and violations under
# injected faults, zero leaked objects after session close).  A subset
# of `test`, kept addressable on its own for quick iteration on the
# remote layer.
fault-differential:
	PYTHONPATH=src $(PYTHON) -m pytest -q \
		tests/sharding/test_remote.py tests/sharding/test_remote_differential.py

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Validates the speedups recorded in BENCH_hotpath.json (runs no
# benches); fails loudly when any has regressed below its floor (1.0x;
# 2.0x for the sharded-detection, engine-parity and sharded-discovery
# benches; 3.0x for the rule-maintenance edit loop) or when a required
# bench is missing.  Re-measure with `make bench` after perf-relevant
# changes.
perf-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/run_bench.py --check

# Line-coverage floor for the discovery, detection, sharding, and
# execution engines, measured with the stdlib trace module (no
# dependency; ~45s).
# Per-file table: `python tools/coverage_gate.py --report`.
coverage:
	PYTHONPATH=src $(PYTHON) tools/coverage_gate.py

bench:
	PYTHONPATH=src $(PYTHON) benchmarks/run_bench.py

# Only the remote-path benches: sharded detection with shard bytes
# behind the fault-injected loopback HTTP object client, sequential
# (remote_object_faults) and through the prefetching reader
# (pipelined_remote).  Prints the I/O-vs-compute overlap breakdown.
bench-remote:
	PYTHONPATH=src $(PYTHON) benchmarks/run_bench.py \
		--only remote_object_faults_64000 pipelined_remote_64000

# The full paper-experiment benchmark suite (pytest-benchmark, slow).
bench-suite:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ -q
