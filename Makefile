# Development entry points.  `make check` is the pre-merge gate: the
# tier-1 test suite plus the persisted-benchmark perf smoke gate.

PYTHON ?= python

.PHONY: check test perf-gate bench bench-suite

check: test perf-gate

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Validates the speedups recorded in BENCH_hotpath.json (runs no
# benches); fails loudly when any has regressed below 1.0x.  Re-measure
# with `make bench` after perf-relevant changes.
perf-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/run_bench.py --check

bench:
	PYTHONPATH=src $(PYTHON) benchmarks/run_bench.py

# The full paper-experiment benchmark suite (pytest-benchmark, slow).
bench-suite:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ -q
